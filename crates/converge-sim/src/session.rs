//! The conference session: wires a [`ConferenceSender`] and a
//! [`ConferenceReceiver`] over the deterministic multipath emulator and
//! runs the whole call as a discrete-event loop.

use std::collections::BTreeMap;

use converge_cc::{ControllerConfig, ControllerKind};
use converge_core::PacketClass;
use converge_net::{
    event::EventQueue, Direction, ImpairmentConfig, NetworkEmulator, PathId, SimDuration, SimTime,
};
use converge_rtp::RtcpPacket;
use converge_trace::{InvariantSink, TraceEvent, TraceHandle, Violation};

use crate::metrics::{CallReport, MetricsCollector};
use crate::pacer::{Pacer, PacerConfig};
use crate::payload::{NetPayload, RtpKind};
use crate::receiver::{ConferenceReceiver, ReceiverEvent};
use crate::scenarios::{FecKind, ScenarioConfig, SchedulerKind};
use crate::sender::ConferenceSender;

/// Configuration of one simulated call.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Network scenario.
    pub scenario: ScenarioConfig,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// FEC policy under test.
    pub fec: FecKind,
    /// Number of camera streams (1–3 in the paper).
    pub streams: u8,
    /// Call duration (the paper uses 3-minute calls).
    pub duration: SimDuration,
    /// Maximum encoding rate per stream (10 Mbps in the paper).
    pub max_encoding_rate_bps: u64,
    /// Fast RTCP interval at the receiver (QoE feedback, NACK, PLI).
    pub rtcp_interval: SimDuration,
    /// Transport feedback / receiver report interval (drives GCC). The
    /// paper's GCC is paced by RTCP reports, slower than the QoE loop.
    pub transport_rtcp_interval: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Congestion-controller coupling (uncoupled = the paper's choice).
    pub coupled_cc: bool,
    /// Per-path congestion-controller selection and tuning (GCC = the
    /// paper's controller and the default).
    pub controller: ControllerConfig,
    /// Structured-event sink; disabled by default (zero overhead).
    pub trace: TraceHandle,
    /// Fast-path the idle loop: when nothing is queued in the pacer and
    /// nothing is in flight, jump the clock straight to the next timer
    /// without polling either. Equivalence-preserving (an idle pacer and
    /// emulator deliver nothing); the knob exists so the proptest harness
    /// can run both ways and assert identical traces.
    pub idle_skip: bool,
}

/// Why a [`SessionConfigBuilder`] refused to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// No scenario was supplied.
    MissingScenario,
    /// The scenario has no paths.
    EmptyScenario,
    /// `streams` was zero.
    NoStreams,
    /// `duration` was zero.
    ZeroDuration,
    /// `max_encoding_rate_bps` was zero.
    ZeroEncodingRate,
    /// An RTCP interval was zero (the session loop would spin).
    ZeroRtcpInterval,
    /// An `impair` call named a path index the scenario does not have.
    ImpairmentPathOutOfRange,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ConfigError::MissingScenario => "no scenario supplied",
            ConfigError::EmptyScenario => "scenario has no paths",
            ConfigError::NoStreams => "streams must be at least 1",
            ConfigError::ZeroDuration => "duration must be positive",
            ConfigError::ZeroEncodingRate => "max encoding rate must be positive",
            ConfigError::ZeroRtcpInterval => "RTCP intervals must be positive",
            ConfigError::ImpairmentPathOutOfRange => {
                "impair names a path index outside the scenario"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

/// Typed builder for [`SessionConfig`]; validates at [`build`].
///
/// Defaults match the paper's standard setup: Converge scheduler and FEC,
/// one stream, 3-minute call, 10 Mbps encoder cap, 100 ms QoE feedback,
/// 250 ms transport feedback, uncoupled congestion control, tracing off.
///
/// [`build`]: SessionConfigBuilder::build
#[derive(Debug, Clone)]
pub struct SessionConfigBuilder {
    scenario: Option<ScenarioConfig>,
    scheduler: SchedulerKind,
    fec: FecKind,
    streams: u8,
    duration: SimDuration,
    max_encoding_rate_bps: u64,
    rtcp_interval: SimDuration,
    transport_rtcp_interval: SimDuration,
    seed: u64,
    coupled_cc: bool,
    controller: ControllerConfig,
    trace: TraceHandle,
    impairments: Vec<(u8, Direction, ImpairmentConfig)>,
    idle_skip: bool,
}

impl Default for SessionConfigBuilder {
    fn default() -> Self {
        SessionConfigBuilder {
            scenario: None,
            scheduler: SchedulerKind::Converge,
            fec: FecKind::Converge,
            streams: 1,
            duration: SimDuration::from_secs(180),
            max_encoding_rate_bps: 10_000_000,
            rtcp_interval: SimDuration::from_millis(100),
            transport_rtcp_interval: SimDuration::from_millis(250),
            seed: 0,
            coupled_cc: false,
            controller: ControllerConfig::default(),
            trace: TraceHandle::disabled(),
            impairments: Vec::new(),
            idle_skip: true,
        }
    }
}

impl SessionConfigBuilder {
    /// The network scenario (required).
    pub fn scenario(mut self, scenario: ScenarioConfig) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// The scheduler under test.
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The FEC policy under test.
    pub fn fec(mut self, fec: FecKind) -> Self {
        self.fec = fec;
        self
    }

    /// Number of camera streams (1–3 in the paper).
    pub fn streams(mut self, streams: u8) -> Self {
        self.streams = streams;
        self
    }

    /// Call duration.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Maximum encoding rate per stream, bits per second.
    pub fn max_encoding_rate_bps(mut self, rate: u64) -> Self {
        self.max_encoding_rate_bps = rate;
        self
    }

    /// Fast RTCP interval at the receiver (QoE feedback, NACK, PLI).
    pub fn rtcp_interval(mut self, interval: SimDuration) -> Self {
        self.rtcp_interval = interval;
        self
    }

    /// Transport feedback / receiver report interval (drives GCC).
    pub fn transport_rtcp_interval(mut self, interval: SimDuration) -> Self {
        self.transport_rtcp_interval = interval;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Couples the per-path congestion controllers (LIA-style).
    pub fn coupled_cc(mut self, coupled: bool) -> Self {
        self.coupled_cc = coupled;
        self
    }

    /// Selects the per-path congestion-control algorithm with its default
    /// tuning (GCC is the default; NADA and mp-BBR are the alternatives).
    pub fn controller(mut self, kind: ControllerKind) -> Self {
        self.controller = ControllerConfig::for_kind(kind);
        self
    }

    /// Supplies a fully tuned controller selection (kind + per-algorithm
    /// config), for callers that need non-default knobs.
    pub fn controller_config(mut self, controller: ControllerConfig) -> Self {
        self.controller = controller;
        self
    }

    /// Installs a structured-event trace sink.
    pub fn trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Enables or disables the idle fast path (on by default). Disabling
    /// it forces the event loop to poll the pacer and emulator on every
    /// iteration; the equivalence proptest runs both settings and asserts
    /// the traces are byte-identical.
    pub fn idle_skip(mut self, enabled: bool) -> Self {
        self.idle_skip = enabled;
        self
    }

    /// Overrides one direction of one scenario path with a fault-injection
    /// config (applied on top of whatever the scenario already specifies).
    /// May be called repeatedly; the path index is validated at [`build`].
    ///
    /// [`build`]: SessionConfigBuilder::build
    pub fn impair(mut self, path: u8, direction: Direction, impairment: ImpairmentConfig) -> Self {
        self.impairments.push((path, direction, impairment));
        self
    }

    /// Validates and produces the config.
    pub fn build(self) -> Result<SessionConfig, ConfigError> {
        let mut scenario = self.scenario.ok_or(ConfigError::MissingScenario)?;
        if scenario.paths.is_empty() {
            return Err(ConfigError::EmptyScenario);
        }
        for (path, direction, impairment) in self.impairments {
            let spec = scenario
                .paths
                .get_mut(path as usize)
                .ok_or(ConfigError::ImpairmentPathOutOfRange)?;
            match direction {
                Direction::Forward => spec.forward_impairment = impairment,
                Direction::Reverse => spec.reverse_impairment = impairment,
            }
        }
        if self.streams == 0 {
            return Err(ConfigError::NoStreams);
        }
        if self.duration == SimDuration::ZERO {
            return Err(ConfigError::ZeroDuration);
        }
        if self.max_encoding_rate_bps == 0 {
            return Err(ConfigError::ZeroEncodingRate);
        }
        if self.rtcp_interval == SimDuration::ZERO
            || self.transport_rtcp_interval == SimDuration::ZERO
        {
            return Err(ConfigError::ZeroRtcpInterval);
        }
        Ok(SessionConfig {
            scenario,
            scheduler: self.scheduler,
            fec: self.fec,
            streams: self.streams,
            duration: self.duration,
            max_encoding_rate_bps: self.max_encoding_rate_bps,
            rtcp_interval: self.rtcp_interval,
            transport_rtcp_interval: self.transport_rtcp_interval,
            seed: self.seed,
            coupled_cc: self.coupled_cc,
            controller: self.controller,
            trace: self.trace,
            idle_skip: self.idle_skip,
        })
    }
}

impl SessionConfig {
    /// Starts a builder with the paper's standard defaults.
    pub fn builder() -> SessionConfigBuilder {
        SessionConfigBuilder::default()
    }

    /// The paper's standard setup over the given scenario/scheduler/FEC.
    ///
    /// Thin wrapper over [`SessionConfig::builder`]; panics if the
    /// arguments fail validation (empty scenario, zero streams/duration).
    pub fn paper_default(
        scenario: ScenarioConfig,
        scheduler: SchedulerKind,
        fec: FecKind,
        streams: u8,
        duration: SimDuration,
        seed: u64,
    ) -> Self {
        SessionConfig::builder()
            .scenario(scenario)
            .scheduler(scheduler)
            .fec(fec)
            .streams(streams)
            .duration(duration)
            .seed(seed)
            .build()
            .expect("paper_default arguments must form a valid config")
    }
}

/// Internal timer events of the session loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tick {
    /// Capture+send a frame for one stream.
    Frame(usize),
    /// Receiver fast feedback round (QoE, NACK, PLI).
    ReceiverRtcp,
    /// Receiver transport feedback / RR round (drives GCC).
    TransportRtcp,
    /// Sender SR/SDES round.
    SenderRtcp,
}

/// A runnable conference session.
pub struct Session {
    config: SessionConfig,
}

impl Session {
    /// Creates a session.
    pub fn new(config: SessionConfig) -> Self {
        Session { config }
    }

    /// Runs the call with an [`InvariantSink`] armed around the configured
    /// trace sink: every event is checked against the control-loop
    /// invariants, then forwarded unchanged, so trace output is identical
    /// to [`Session::run`]. Returns the report plus any violations.
    pub fn run_checked(self) -> (CallReport, Vec<Violation>) {
        let mut cfg = self.config;
        let checker = std::sync::Arc::new(InvariantSink::wrapping(&cfg.trace));
        cfg.trace = TraceHandle::new(checker.clone());
        let report = Session::new(cfg).run();
        let violations = checker.take_violations();
        (report, violations)
    }

    /// Runs the call to completion and returns the report.
    pub fn run(self) -> CallReport {
        let cfg = self.config;
        let paths = cfg.scenario.build_paths(cfg.seed);
        let path_ids: Vec<PathId> = paths.iter().map(|p| p.id()).collect();
        let mut emu: NetworkEmulator<NetPayload> = NetworkEmulator::new(paths);

        let format = converge_video::VideoFormat::HD720;
        let mut metrics =
            MetricsCollector::new(cfg.duration, format, cfg.max_encoding_rate_bps, cfg.streams);

        let frame_interval = SimDuration::from_micros(1_000_000 / format.fps as u64);
        let mut sender = ConferenceSender::new(
            cfg.streams,
            &path_ids,
            cfg.scheduler.build(frame_interval),
            cfg.fec.build(),
            cfg.controller,
            cfg.max_encoding_rate_bps,
        );
        if cfg.coupled_cc {
            sender.set_coupling(crate::sender::RateCoupling::Lia);
        }
        let mut receiver = ConferenceReceiver::new(cfg.streams, &path_ids, format.fps, path_ids[0]);
        let mut pacer = Pacer::new(PacerConfig::default());

        let trace = cfg.trace.clone();
        sender.set_trace(trace.clone());
        receiver.set_trace(trace.clone());

        // SR bookkeeping at the receiver for RTT echo: path → (SR send ms,
        // SR arrival).
        let mut sr_seen: BTreeMap<PathId, (u64, SimTime)> = BTreeMap::new();

        let mut timers: EventQueue<Tick> = EventQueue::new();
        for s in 0..cfg.streams as usize {
            // Stagger streams slightly so their frames don't collide.
            timers.schedule(SimTime::from_micros(s as u64 * 3_000), Tick::Frame(s));
        }
        timers.schedule(SimTime::from_millis(50), Tick::ReceiverRtcp);
        timers.schedule(SimTime::from_millis(60), Tick::TransportRtcp);
        timers.schedule(SimTime::from_millis(40), Tick::SenderRtcp);

        let end = SimTime::ZERO + cfg.duration;
        let mut clock = SimTime::ZERO;

        // Reused across iterations so the steady-state loop allocates
        // nothing for polling.
        let mut paced: Vec<crate::sender::OutboundPacket> = Vec::new();
        let mut deliveries: Vec<converge_net::Delivery<NetPayload>> = Vec::new();

        loop {
            // When nothing is queued and nothing is in flight, the only
            // possible event source is a timer: jump straight there.
            let idle = cfg.idle_skip && pacer.is_empty() && emu.idle();
            let now = if idle {
                match timers.peek_time() {
                    Some(t) => t,
                    None => break,
                }
            } else {
                // Next event: earliest of timers, network deliveries, and
                // the pacer's next release.
                let candidates = [timers.peek_time(), emu.next_arrival(), pacer.next_release()];
                match candidates.into_iter().flatten().min() {
                    Some(t) => t,
                    None => break,
                }
            };
            // The pacer reports a stale (past) `busy_until` for a path that
            // went idle and was re-filled; clamp so simulated time never
            // runs backwards.
            let now = now.max(clock);
            clock = now;
            if now >= end {
                break;
            }

            // Paced transmissions due now (an idle pacer releases nothing).
            if !idle {
                pacer.poll_into(now, &mut paced);
            }
            for out in paced.drain(..) {
                let size = out.payload.wire_size();
                let is_fec = out.class == PacketClass::Fec;
                let is_media = matches!(
                    &out.payload,
                    NetPayload::Rtp(r) if r.kind.video_packet().is_some()
                );
                metrics.on_packet_sent(now, out.path, size, is_fec, is_media);
                if out.class == PacketClass::Retransmission {
                    metrics.on_retransmission();
                    trace.emit(now, TraceEvent::Retransmitted { path: out.path });
                }
                let (outcome, _) = emu.send(out.path, Direction::Forward, now, size, out.payload);
                if outcome.is_lost() {
                    metrics.on_packet_lost(out.path);
                }
            }


            // Network deliveries due now (an idle emulator delivers none).
            if !idle {
                emu.poll_into(now, &mut deliveries);
            }
            for delivery in deliveries.drain(..) {
                match (delivery.direction, delivery.payload) {
                    (Direction::Forward, NetPayload::Rtp(rtp)) => {
                        // Probe packets are echoed straight back.
                        if let RtpKind::Probe { probe_seq } = rtp.kind {
                            let echo = NetPayload::ProbeEcho {
                                probe_seq,
                                probe_sent_at: rtp.sent_at,
                            };
                            let size = echo.wire_size();
                            emu.send(delivery.path, Direction::Reverse, now, size, echo);
                        }
                        let media_payload = match &rtp.kind {
                            RtpKind::Media(p) if p.kind.is_media() => p.size,
                            RtpKind::Retransmission(p) if p.kind.is_media() => p.size,
                            _ => 0,
                        };
                        metrics.on_packet_received(now, delivery.path, media_payload);
                        for ev in receiver.on_rtp(now, &rtp) {
                            Self::record_receiver_event(&mut metrics, &trace, now, ev);
                        }
                    }
                    (Direction::Forward, NetPayload::Rtcp(rtcp)) => {
                        // Sender → receiver control.
                        match &rtcp {
                            RtcpPacket::SenderReport(sr) => {
                                sr_seen.insert(PathId(sr.path_id), (sr.ntp_micros / 1_000, now));
                            }
                            RtcpPacket::Sdes(sdes) => {
                                if let Some(fr) = sdes.frame_rate {
                                    receiver.on_sdes_frame_rate(fr as u32);
                                }
                            }
                            _ => {}
                        }
                    }
                    (Direction::Reverse, NetPayload::Rtcp(rtcp)) => {
                        // Receiver → sender feedback.
                        if let RtcpPacket::Nack(ref n) = rtcp {
                            metrics.on_nack_sent(n.lost.len());
                            trace.emit(
                                now,
                                TraceEvent::NackSent {
                                    path: delivery.path,
                                    packets: n.lost.len() as u32,
                                },
                            );
                        }
                        if matches!(rtcp, RtcpPacket::Pli(_)) {
                            metrics.on_keyframe_request();
                        }
                        sender.on_rtcp(now, &rtcp);
                    }
                    (Direction::Reverse, NetPayload::ProbeEcho { probe_seq, .. }) => {
                        sender.on_probe_echo(now, probe_seq);
                    }
                    // Unused combinations.
                    (Direction::Forward, NetPayload::ProbeEcho { .. })
                    | (Direction::Reverse, NetPayload::Rtp(_)) => {}
                }
            }


            // Timer events due now.
            while let Some((_, tick)) = timers.pop_due(now) {
                match tick {
                    Tick::Frame(stream_idx) => {
                        let result = sender.on_frame_tick(now, stream_idx);
                        metrics.on_frame_encoded(now, result.qp, result.height);
                        // Keep the pacer's budgets in sync with GCC.
                        for m in sender.path_metrics() {
                            pacer.set_rate(m.id, m.rate_bps as f64);
                        }
                        pacer.enqueue(now, result.packets);
                        timers.schedule(now + frame_interval, Tick::Frame(stream_idx));
                    }
                    Tick::ReceiverRtcp => {
                        for (path, rtcp) in receiver.poll_rtcp_with(now, &sr_seen, false) {
                            let payload = NetPayload::Rtcp(rtcp);
                            let size = payload.wire_size();
                            emu.send(path, Direction::Reverse, now, size, payload);
                        }
                        timers.schedule(now + cfg.rtcp_interval, Tick::ReceiverRtcp);
                    }
                    Tick::TransportRtcp => {
                        for (path, rtcp) in receiver.poll_rtcp_with(now, &sr_seen, true) {
                            let payload = NetPayload::Rtcp(rtcp);
                            let size = payload.wire_size();
                            emu.send(path, Direction::Reverse, now, size, payload);
                        }
                        timers.schedule(now + cfg.transport_rtcp_interval, Tick::TransportRtcp);
                    }
                    Tick::SenderRtcp => {
                        for (path, rtcp) in sender.periodic_rtcp(now) {
                            let payload = NetPayload::Rtcp(rtcp);
                            let size = payload.wire_size();
                            emu.send(path, Direction::Forward, now, size, payload);
                        }
                        timers.schedule(now + SimDuration::from_millis(500), Tick::SenderRtcp);
                    }
                }
            }


            // Fold the tick's packet counters into the aggregates in one go.
            metrics.flush_tick();

        }


        // Frames the encoder produced but the receiver never displayed are
        // drops too; fold the difference in (avoids double counting the
        // explicit drop events, which we track separately as buffer drops).
        metrics.finish()
    }

    fn record_receiver_event(
        metrics: &mut MetricsCollector,
        trace: &TraceHandle,
        now: SimTime,
        ev: ReceiverEvent,
    ) {
        match ev {
            ReceiverEvent::FrameDecoded { stream, at, e2e } => {
                // Stamp with `now`, not the decode instant: the frame
                // buffer may date decodes to a future playout deadline,
                // and the trace timeline must stay monotone.
                trace.emit(
                    now,
                    TraceEvent::FrameDecoded {
                        stream: stream.0,
                        e2e_us: e2e.as_micros(),
                    },
                );
                if let Some(gap) = metrics.on_frame_decoded(stream, at, e2e) {
                    trace.emit(now, TraceEvent::FrameFrozen { gap_us: gap.as_micros() });
                }
            }
            ReceiverEvent::FrameDropped { stream, .. } => {
                trace.emit(now, TraceEvent::FrameDropped { stream: stream.0 });
                metrics.on_frame_dropped(now);
            }
            ReceiverEvent::Ifd { at, ifd } => metrics.on_ifd(at, ifd),
            ReceiverEvent::Fcd { at, fcd } => metrics.on_fcd(at, fcd),
            ReceiverEvent::FecRecovered => metrics.on_fec_used(),
            ReceiverEvent::FecReceived => metrics.on_fec_received(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(scheduler: SchedulerKind, fec: FecKind) -> SessionConfig {
        SessionConfig::paper_default(
            ScenarioConfig::fec_tradeoff(0.0),
            scheduler,
            fec,
            1,
            SimDuration::from_secs(20),
            42,
        )
    }

    #[test]
    fn clean_network_call_delivers_frames() {
        let report = Session::new(quick_config(SchedulerKind::Converge, FecKind::Converge)).run();
        // On two clean 15 Mbps paths a 20 s call should decode nearly all
        // frames at ~30 FPS.
        assert!(report.fps > 20.0, "fps {}", report.fps);
        assert!(report.frames_decoded > 400, "{}", report.frames_decoded);
        assert!(report.throughput_bps > 1_000_000.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Session::new(quick_config(SchedulerKind::Converge, FecKind::Converge)).run();
        let b = Session::new(quick_config(SchedulerKind::Converge, FecKind::Converge)).run();
        assert_eq!(a.frames_decoded, b.frames_decoded);
        assert_eq!(a.throughput_bps, b.throughput_bps);
        assert_eq!(a.fec_packets_sent, b.fec_packets_sent);
    }

    #[test]
    fn single_path_uses_one_path() {
        let report = Session::new(quick_config(
            SchedulerKind::SinglePath(0),
            FecKind::WebRtcTable,
        ))
        .run();
        let p1 = report.paths.get(&PathId(1)).copied().unwrap_or_default();
        assert_eq!(p1.packets_sent, 0, "single-path must not touch path 1");
        assert!(report.fps > 15.0, "fps {}", report.fps);
    }

    #[test]
    fn lossy_network_generates_fec_and_nacks() {
        let cfg = SessionConfig::paper_default(
            ScenarioConfig::fec_tradeoff(5.0),
            SchedulerKind::Converge,
            FecKind::Converge,
            1,
            SimDuration::from_secs(20),
            7,
        );
        let report = Session::new(cfg).run();
        assert!(report.fec_packets_sent > 0);
        assert!(report.nacks_sent > 0);
        assert!(report.fec_packets_used > 0, "some FEC should be used");
    }

    #[test]
    fn webrtc_table_fec_has_higher_overhead_than_converge() {
        let run = |fec| {
            Session::new(SessionConfig::paper_default(
                ScenarioConfig::fec_tradeoff(2.0),
                SchedulerKind::Converge,
                fec,
                1,
                SimDuration::from_secs(20),
                11,
            ))
            .run()
        };
        let conv = run(FecKind::Converge);
        let table = run(FecKind::WebRtcTable);
        assert!(
            table.fec_overhead_pct() > conv.fec_overhead_pct() * 2.0,
            "table {} vs converge {}",
            table.fec_overhead_pct(),
            conv.fec_overhead_pct()
        );
    }

    #[test]
    fn builder_defaults_match_paper_default() {
        let built = SessionConfig::builder()
            .scenario(ScenarioConfig::fec_tradeoff(0.0))
            .build()
            .expect("valid");
        let legacy = SessionConfig::paper_default(
            ScenarioConfig::fec_tradeoff(0.0),
            SchedulerKind::Converge,
            FecKind::Converge,
            1,
            SimDuration::from_secs(180),
            0,
        );
        assert_eq!(built.streams, legacy.streams);
        assert_eq!(built.duration, legacy.duration);
        assert_eq!(built.max_encoding_rate_bps, legacy.max_encoding_rate_bps);
        assert_eq!(built.rtcp_interval, legacy.rtcp_interval);
        assert_eq!(
            built.transport_rtcp_interval,
            legacy.transport_rtcp_interval
        );
        assert_eq!(built.seed, legacy.seed);
        assert_eq!(built.coupled_cc, legacy.coupled_cc);
        assert_eq!(built.controller.kind, legacy.controller.kind);
        assert_eq!(built.controller.kind, ControllerKind::Gcc);
        assert!(!built.trace.is_enabled());
    }

    #[test]
    fn alternative_controllers_drive_full_sessions_cleanly() {
        for kind in [ControllerKind::Nada, ControllerKind::MpBbr] {
            let cfg = SessionConfig::builder()
                .scenario(ScenarioConfig::fec_tradeoff(2.0))
                .duration(SimDuration::from_secs(15))
                .seed(7)
                .controller(kind)
                .build()
                .expect("valid");
            let (report, violations) = Session::new(cfg).run_checked();
            assert!(violations.is_empty(), "{kind:?}: {violations:?}");
            assert!(
                report.frames_decoded > 200,
                "{kind:?} decoded only {} frames",
                report.frames_decoded
            );
            assert!(report.throughput_bps > 500_000.0, "{kind:?}");
        }
    }

    #[test]
    fn controller_selection_changes_the_run() {
        let run = |kind| {
            Session::new(
                SessionConfig::builder()
                    .scenario(ScenarioConfig::fec_tradeoff(2.0))
                    .duration(SimDuration::from_secs(15))
                    .seed(7)
                    .controller(kind)
                    .build()
                    .expect("valid"),
            )
            .run()
        };
        let gcc = run(ControllerKind::Gcc);
        let nada = run(ControllerKind::Nada);
        // Different rate-control dynamics must leave a visible footprint.
        assert_ne!(gcc.throughput_bps, nada.throughput_bps);
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        use crate::session::ConfigError;
        let base = || SessionConfig::builder().scenario(ScenarioConfig::fec_tradeoff(0.0));

        assert_eq!(
            SessionConfig::builder().build().unwrap_err(),
            ConfigError::MissingScenario
        );
        assert_eq!(
            SessionConfig::builder()
                .scenario(ScenarioConfig {
                    name: "empty".into(),
                    paths: vec![],
                })
                .build()
                .unwrap_err(),
            ConfigError::EmptyScenario
        );
        assert_eq!(
            base().streams(0).build().unwrap_err(),
            ConfigError::NoStreams
        );
        assert_eq!(
            base().duration(SimDuration::ZERO).build().unwrap_err(),
            ConfigError::ZeroDuration
        );
        assert_eq!(
            base().max_encoding_rate_bps(0).build().unwrap_err(),
            ConfigError::ZeroEncodingRate
        );
        assert_eq!(
            base().rtcp_interval(SimDuration::ZERO).build().unwrap_err(),
            ConfigError::ZeroRtcpInterval
        );
        assert_eq!(
            base()
                .transport_rtcp_interval(SimDuration::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroRtcpInterval
        );
        // Errors display something human-readable.
        assert!(!ConfigError::NoStreams.to_string().is_empty());
    }

    #[test]
    fn session_with_ring_sink_captures_events() {
        use std::sync::Arc;
        let sink = Arc::new(converge_trace::RingSink::new(1 << 20));
        let cfg = SessionConfig::builder()
            .scenario(ScenarioConfig::fec_tradeoff(2.0))
            .duration(SimDuration::from_secs(10))
            .seed(9)
            .trace(TraceHandle::new(sink.clone()))
            .build()
            .expect("valid");
        let _report = Session::new(cfg).run();
        let records = sink.drain();
        assert!(!records.is_empty(), "traced session must emit events");
        // Timestamps are monotone non-decreasing.
        assert!(records.windows(2).all(|w| w[0].at <= w[1].at));
        // Core event families show up on a lossy call.
        let names: std::collections::BTreeSet<&str> =
            records.iter().map(|r| r.event.name()).collect();
        for expected in ["split_decision", "fast_path_switched", "frame_decoded"] {
            assert!(names.contains(expected), "missing {expected} in {names:?}");
        }
    }

    #[test]
    fn trace_does_not_perturb_the_run() {
        use std::sync::Arc;
        let base = || {
            SessionConfig::builder()
                .scenario(ScenarioConfig::fec_tradeoff(2.0))
                .duration(SimDuration::from_secs(10))
                .seed(5)
        };
        let plain = Session::new(base().build().expect("valid")).run();
        let sink = Arc::new(converge_trace::RingSink::new(1 << 20));
        let traced = Session::new(
            base()
                .trace(TraceHandle::new(sink))
                .build()
                .expect("valid"),
        )
        .run();
        assert_eq!(plain.frames_decoded, traced.frames_decoded);
        assert_eq!(plain.throughput_bps, traced.throughput_bps);
        assert_eq!(plain.nacks_sent, traced.nacks_sent);
    }

    #[test]
    fn builder_impair_overrides_scenario_paths() {
        use converge_net::{BlackoutSchedule, ImpairmentConfig};
        let imp = ImpairmentConfig::degraded(0.2, SimDuration::from_millis(10));
        let built = SessionConfig::builder()
            .scenario(ScenarioConfig::fec_tradeoff(0.0))
            .impair(1, Direction::Reverse, imp)
            .build()
            .expect("valid");
        assert!(built.scenario.paths[0].reverse_impairment.is_noop());
        assert_eq!(built.scenario.paths[1].reverse_impairment, imp);
        assert!(built.scenario.paths[1].forward_impairment.is_noop());

        let err = SessionConfig::builder()
            .scenario(ScenarioConfig::fec_tradeoff(0.0))
            .impair(
                7,
                Direction::Forward,
                ImpairmentConfig::blackout(BlackoutSchedule::single(
                    SimTime::ZERO,
                    SimDuration::from_secs(1),
                )),
            )
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ImpairmentPathOutOfRange);
    }

    #[test]
    fn run_checked_reports_clean_on_a_sane_call() {
        let (report, violations) =
            Session::new(quick_config(SchedulerKind::Converge, FecKind::Converge)).run_checked();
        assert!(violations.is_empty(), "{violations:?}");
        assert!(report.frames_decoded > 400);
    }

    #[test]
    fn run_checked_still_feeds_the_inner_sink() {
        use std::sync::Arc;
        let sink = Arc::new(converge_trace::RingSink::new(1 << 20));
        let cfg = SessionConfig::builder()
            .scenario(ScenarioConfig::fec_tradeoff(2.0))
            .duration(SimDuration::from_secs(10))
            .seed(9)
            .trace(TraceHandle::new(sink.clone()))
            .build()
            .expect("valid");
        let (_report, violations) = Session::new(cfg).run_checked();
        assert!(violations.is_empty(), "{violations:?}");
        assert!(!sink.drain().is_empty(), "tee must forward records");
    }

    #[test]
    fn three_streams_share_the_paths() {
        let cfg = SessionConfig::paper_default(
            ScenarioConfig::fec_tradeoff(0.0),
            SchedulerKind::Converge,
            FecKind::Converge,
            3,
            SimDuration::from_secs(15),
            3,
        );
        let report = Session::new(cfg).run();
        assert_eq!(report.streams, 3);
        // All three streams decode something.
        assert!(report.frames_decoded > 300, "{}", report.frames_decoded);
    }
}
