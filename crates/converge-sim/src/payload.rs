//! Payloads exchanged over the emulated network.
//!
//! The emulator carries typed payloads rather than raw bytes: the wire
//! formats in `converge-rtp` are real and round-trip tested, but inside the
//! simulation the typed forms avoid serializing every packet of a
//! three-minute call.

use converge_net::{PathId, SimTime};
use converge_rtp::RtcpPacket;
use converge_video::{StreamId, VideoPacket};

/// What a simulated RTP packet carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtpKind {
    /// A media or control (PPS/SPS) packet straight from the packetizer.
    Media(VideoPacket),
    /// A retransmission of a previously sent media packet.
    Retransmission(VideoPacket),
    /// An XOR FEC repair packet protecting `protected` (full metadata is
    /// carried so the receiver can rebuild any single missing member — the
    /// real repair packet physically contains this via the XOR payload).
    Fec {
        /// Stream whose packets are protected.
        stream: StreamId,
        /// The packets the repair covers.
        protected: Vec<VideoPacket>,
        /// Path the repair was generated for (its loss drove the rate).
        origin_path: PathId,
    },
    /// A duplicate probe measuring a disabled path (paper §4.2).
    Probe {
        /// Sequence echoed back by the receiver for RTT measurement.
        probe_seq: u64,
    },
}

impl RtpKind {
    /// Wire size of this packet in bytes (payload + RTP header + the
    /// multipath extension).
    pub fn wire_size(&self) -> usize {
        const HEADER: usize = 12 + 12; // RTP fixed header + extension block
        match self {
            RtpKind::Media(p) | RtpKind::Retransmission(p) => HEADER + p.size,
            RtpKind::Fec { protected, .. } => {
                HEADER + protected.iter().map(|p| p.size).max().unwrap_or(0) + 16
            }
            // Probes duplicate a full-size packet from the fast path
            // (paper section 4.2), so they measure realistic serialization.
            RtpKind::Probe { .. } => HEADER + 1200,
        }
    }

    /// The media packet inside, if any.
    pub fn video_packet(&self) -> Option<&VideoPacket> {
        match self {
            RtpKind::Media(p) | RtpKind::Retransmission(p) => Some(p),
            _ => None,
        }
    }
}

/// One simulated RTP packet in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRtp {
    /// Payload.
    pub kind: RtpKind,
    /// Path it was scheduled on.
    pub path: PathId,
    /// Per-path transport-wide sequence number (the extension's
    /// MpTransportSequenceNumber).
    pub transport_seq: u64,
    /// When the sender emitted it.
    pub sent_at: SimTime,
}

/// Everything the emulator can carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetPayload {
    /// An RTP packet (media plane).
    Rtp(SimRtp),
    /// An RTCP packet (control plane).
    Rtcp(RtcpPacket),
    /// The receiver echoing a probe back to the sender.
    ProbeEcho {
        /// Sequence from the probe.
        probe_seq: u64,
        /// When the sender originally emitted the probe.
        probe_sent_at: SimTime,
    },
}

impl NetPayload {
    /// Wire size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            NetPayload::Rtp(p) => p.kind.wire_size(),
            NetPayload::Rtcp(p) => p.wire_len(),
            NetPayload::ProbeEcho { .. } => 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use converge_video::{FrameType, PacketKind};

    fn vp(size: usize) -> VideoPacket {
        VideoPacket {
            stream: StreamId(0),
            sequence: 1,
            frame_id: 0,
            gop_id: 0,
            frame_type: FrameType::Delta,
            kind: PacketKind::Media { index: 0, count: 1 },
            size,
            capture_time: SimTime::ZERO,
        }
    }

    #[test]
    fn media_wire_size_includes_headers() {
        let k = RtpKind::Media(vp(1200));
        assert_eq!(k.wire_size(), 1200 + 24);
    }

    #[test]
    fn fec_wire_size_tracks_largest_protected() {
        let k = RtpKind::Fec {
            stream: StreamId(0),
            protected: vec![vp(500), vp(1200), vp(900)],
            origin_path: PathId(0),
        };
        assert_eq!(k.wire_size(), 24 + 1200 + 16);
    }

    #[test]
    fn probe_is_full_size() {
        assert_eq!(RtpKind::Probe { probe_seq: 1 }.wire_size(), 24 + 1200);
    }

    #[test]
    fn video_packet_accessor() {
        assert!(RtpKind::Media(vp(10)).video_packet().is_some());
        assert!(RtpKind::Probe { probe_seq: 0 }.video_packet().is_none());
    }

    #[test]
    fn rtcp_payload_size_is_wire_length() {
        let p = NetPayload::Rtcp(RtcpPacket::Pli(converge_rtp::Pli {
            path_id: 0,
            ssrc: 1,
        }));
        assert_eq!(p.wire_size(), 16);
    }
}
