//! The conference sender: camera streams → encoder → packetizer →
//! scheduler → FEC → paths, plus reaction to every RTCP message.

use std::collections::{BTreeMap, VecDeque};

use converge_cc::{CongestionController, ControllerConfig};
use converge_core::{classify, FecPolicy, PacketClass, PathMetrics, Schedulable, Scheduler};
use converge_gcc::PacketTiming;
use converge_net::{PathId, SimDuration, SimTime};
use converge_rtp::RtcpPacket;
use converge_signal::{ConnectionMonitor, MonitorConfig, PathState};
use converge_trace::TraceHandle;
use converge_video::{
    EncoderConfig, FrameType, Packetizer, PacketizerConfig, StreamId, VideoEncoder, VideoPacket,
};

use crate::payload::{NetPayload, RtpKind, SimRtp};


/// One camera stream's sending pipeline.
struct StreamPipeline {
    encoder: VideoEncoder,
    packetizer: Packetizer,
}

/// Result of one frame tick: the packets to transmit and the encoded
/// frame's QP for metrics.
pub struct FrameTickResult {
    /// Packets to transmit, in order.
    pub packets: Vec<OutboundPacket>,
    /// QP the encoder used for this frame.
    pub qp: u8,
    /// Encoded frame height (resolution-adaptation telemetry).
    pub height: u32,
}

/// A packet ready to leave the sender, tagged with class for metrics.
pub struct OutboundPacket {
    /// The payload.
    pub payload: NetPayload,
    /// Path to send it on.
    pub path: PathId,
    /// Class, for counting (media/FEC/rtx/probe).
    pub class: PacketClass,
}

/// Slots in the per-path `sent` ring (a power of two so the index is a
/// mask). Feedback matches within an RTT — a few hundred sequences — so
/// 16 384 newest-per-residue retention is far beyond what it ever probes.
const SENT_SLOTS: usize = 1 << 14;

/// Ring-buffer capacities for one sender's packet histories.
///
/// The defaults are deliberately oversized for a single session (a few MB
/// per sender is irrelevant when one process runs one call). A fleet of
/// thousands of sessions cannot afford that: [`SenderSizing::fleet`] keeps
/// the same power-of-two ring structure at a fraction of the footprint,
/// trading retention horizon (still many RTTs deep) for memory that stays
/// O(active packets), not O(sessions × default rings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SenderSizing {
    /// Per-path transport-feedback ring slots (power of two).
    pub tx_slots: usize,
    /// Per-stream retransmission-history ring slots (power of two).
    pub media_slots: usize,
}

impl Default for SenderSizing {
    fn default() -> Self {
        SenderSizing {
            tx_slots: SENT_SLOTS,
            media_slots: 1 << 16,
        }
    }
}

impl SenderSizing {
    /// Compact rings for fleet-scale runs: ~512 in-flight transport
    /// sequences per path and ~2048 media packets (~2 s of 30 fps video)
    /// per stream — both several round-trips deeper than feedback or
    /// NACKs ever reach back.
    pub fn fleet() -> Self {
        SenderSizing {
            tx_slots: 1 << 9,
            media_slots: 1 << 11,
        }
    }
}

/// Sender-side per-path transport bookkeeping.
#[derive(Debug)]
struct PathTxState {
    next_transport_seq: u64,
    /// In-flight (transport_seq, send time, size) for congestion-controller
    /// feedback matching, a ring indexed by `transport_seq % SENT_SLOTS`;
    /// the stored sequence confirms a hit, and a match is taken out of the
    /// slot so duplicated feedback cannot yield a timing twice. One
    /// indexed store per packet replaces a hash insert plus FIFO eviction.
    sent: Box<[Option<(u64, SimTime, usize)>]>,
    /// Highest transport sequence acknowledged so far, for unwrapping the
    /// 16-bit sequence numbers feedback carries on the wire.
    highest_acked: u64,
}

impl Default for PathTxState {
    fn default() -> Self {
        PathTxState::with_slots(SENT_SLOTS)
    }
}

impl PathTxState {
    fn with_slots(slots: usize) -> Self {
        debug_assert!(slots.is_power_of_two());
        PathTxState {
            next_transport_seq: 0,
            sent: vec![None; slots].into_boxed_slice(),
            highest_acked: 0,
        }
    }
}

/// One stream's retransmission history ring: slot `i` holds the newest
/// sent media packet (and the path it took) whose sequence ends in `i`.
type MediaRing = Box<[Option<(VideoPacket, PathId)>]>;

/// Reconstructs a full 64-bit sequence from its low 16 bits, choosing the
/// candidate nearest to `reference` (handles the wrap at 65 536 packets,
/// which a 9 Mbps path crosses after ~2 minutes).
fn unwrap_seq16(seq16: u16, reference: u64) -> u64 {
    let base = reference & !0xFFFF;
    let candidates = [
        base.wrapping_sub(0x1_0000) | seq16 as u64,
        base | seq16 as u64,
        base.wrapping_add(0x1_0000) | seq16 as u64,
    ];
    candidates
        .into_iter()
        .min_by_key(|c| c.abs_diff(reference))
        .expect("non-empty")
}

/// How per-path congestion controllers interact (paper section 4.1: "We
/// use the uncoupled congestion control approach").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateCoupling {
    /// Independent controllers, one per path (Converge's choice).
    Uncoupled,
    /// LIA-style coupling: each subflow's growth is dampened by its share
    /// of the aggregate, so the total grows like one flow. Conservative at
    /// shared bottlenecks, underutilizes independent paths — the trade-off
    /// the paper avoids by choosing uncoupled.
    Lia,
}

/// The conference sender.
pub struct ConferenceSender {
    streams: Vec<StreamPipeline>,
    /// One congestion controller per path (uncoupled by default), behind
    /// the `CongestionController` trait so the sender is agnostic to the
    /// algorithm (GCC / NADA / mp-BBR).
    cc: BTreeMap<PathId, Box<dyn CongestionController>>,
    scheduler: Box<dyn Scheduler>,
    fec: Box<dyn FecPolicy>,
    /// Per-path transport send state, sorted by `PathId`; only ever
    /// point-looked-up, and a linear scan over a handful of paths is
    /// cheaper than a tree walk on the per-packet path.
    tx: Vec<(PathId, PathTxState)>,
    /// Recently sent media packets with the path they travelled, for
    /// retransmission and NACK loss attribution. One ring per stream,
    /// indexed by the low 16 bits of the sequence: slot `i` always holds
    /// the newest packet whose sequence ends in `i`, which is exactly the
    /// candidate a 16-bit NACK can name. One indexed store per packet
    /// replaces a hash insert plus FIFO eviction, and retention (the
    /// newest 65 536 per stream, ≈60 s of video) comfortably covers the
    /// few-RTT horizon NACKs actually reference.
    sent_media: Vec<MediaRing>,
    /// Retransmissions waiting for the next batch.
    rtx_queue: VecDeque<VideoPacket>,
    /// Next probe sequence.
    next_probe_seq: u64,
    /// Outstanding probes: seq → (path, sent time).
    outstanding_probes: BTreeMap<u64, (PathId, SimTime)>,
    /// EWMA of FEC bytes / media bytes: protection packets share the
    /// congestion-controlled budget with media ("protected packets deprive
    /// the bandwidth of video frames", paper section 3.3), so the encoder
    /// target is discounted by the running protection overhead.
    fec_overhead_ewma: f64,
    /// Transport-level liveness monitor (the paper's CM-synchronization
    /// wrapper, section 5): a path whose feedback goes silent is marked
    /// down and excluded from scheduling until it speaks again.
    monitor: ConnectionMonitor,
    /// Congestion-controller coupling mode.
    coupling: RateCoupling,
    /// Ring capacities used for any lazily created path/stream state.
    sizing: SenderSizing,
}

impl ConferenceSender {
    /// Creates a sender with `n_streams` cameras over `paths`.
    pub fn new(
        n_streams: u8,
        paths: &[PathId],
        scheduler: Box<dyn Scheduler>,
        fec: Box<dyn FecPolicy>,
        controller: ControllerConfig,
        max_encoding_rate_bps: u64,
    ) -> Self {
        Self::new_sized(
            n_streams,
            paths,
            scheduler,
            fec,
            controller,
            max_encoding_rate_bps,
            SenderSizing::default(),
        )
    }

    /// Creates a sender with explicit ring capacities (fleet runs shrink
    /// them; see [`SenderSizing`]). `new` is this with the defaults.
    #[allow(clippy::too_many_arguments)]
    pub fn new_sized(
        n_streams: u8,
        paths: &[PathId],
        scheduler: Box<dyn Scheduler>,
        fec: Box<dyn FecPolicy>,
        controller: ControllerConfig,
        max_encoding_rate_bps: u64,
        sizing: SenderSizing,
    ) -> Self {
        let streams = (0..n_streams)
            .map(|i| {
                let mut cfg = EncoderConfig::paper_default(StreamId(i));
                cfg.max_bitrate_bps = max_encoding_rate_bps;
                StreamPipeline {
                    encoder: VideoEncoder::new(cfg),
                    packetizer: Packetizer::new(PacketizerConfig::default()),
                }
            })
            .collect();
        let cc = paths.iter().map(|&p| (p, controller.build(p))).collect();
        let tx = {
            let mut v: Vec<(PathId, PathTxState)> = paths
                .iter()
                .map(|&p| (p, PathTxState::with_slots(sizing.tx_slots)))
                .collect();
            v.sort_by_key(|(p, _)| *p);
            v
        };
        ConferenceSender {
            streams,
            cc,
            scheduler,
            fec,
            tx,
            sent_media: Vec::new(),
            rtx_queue: VecDeque::new(),
            next_probe_seq: 0,
            outstanding_probes: BTreeMap::new(),
            fec_overhead_ewma: 0.0,
            monitor: ConnectionMonitor::new(MonitorConfig::default(), paths),
            coupling: RateCoupling::Uncoupled,
            sizing,
        }
    }

    /// Switches the congestion-coupling mode (for the design ablation).
    pub fn set_coupling(&mut self, coupling: RateCoupling) {
        self.coupling = coupling;
    }

    /// Applies an externally computed additive-increase scale to every
    /// path controller — the coupling surface an RFC 8382 shared-bottleneck
    /// detector drives (`1/group_size` for grouped sessions, `1.0`
    /// otherwise). Under [`RateCoupling::Uncoupled`] (the default) the
    /// scale persists until the next call; under [`RateCoupling::Lia`] the
    /// per-tick LIA share computation overwrites it.
    pub fn set_increase_scale_all(&mut self, scale: f64) {
        for ctl in self.cc.values_mut() {
            ctl.set_increase_scale(scale);
        }
    }

    /// Installs a trace handle on every sender-side component: scheduler,
    /// FEC policy, per-path congestion controllers, and the connection
    /// monitor.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.scheduler.set_trace(trace.clone());
        self.fec.set_trace(trace.clone());
        for (&path, ctl) in self.cc.iter_mut() {
            ctl.set_trace(trace.clone(), path);
        }
        self.monitor.set_trace(trace);
    }

    /// Number of camera streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// The frame interval of stream 0 (all streams share the format).
    pub fn frame_interval(&self) -> SimDuration {
        self.streams[0].encoder.frame_interval()
    }

    /// Advertised frame rate (for the SDES message).
    pub fn frame_rate(&self) -> u32 {
        self.streams[0].encoder.config().format.fps
    }

    /// Current per-path metrics snapshot from the congestion controllers;
    /// paths the connection monitor has declared down are disabled at the
    /// transport level.
    pub fn path_metrics(&self) -> Vec<PathMetrics> {
        self.cc
            .iter()
            .map(|(&id, ctl)| PathMetrics {
                id,
                rate_bps: ctl.target_rate_bps(),
                srtt: ctl.srtt().unwrap_or(SimDuration::from_millis(100)),
                loss: ctl.fraction_lost(),
                enabled: self.monitor.state(id) != Some(PathState::Down),
            })
            .collect()
    }

    /// Connection-monitor state for a path (tests/telemetry).
    pub fn path_state(&self, path: PathId) -> Option<PathState> {
        self.monitor.state(path)
    }

    /// The scheduler in use (for tests).
    pub fn scheduler(&self) -> &dyn Scheduler {
        self.scheduler.as_ref()
    }

    /// Captures and sends one frame on stream `stream_idx` at `now`.
    pub fn on_frame_tick(&mut self, now: SimTime, stream_idx: usize) -> FrameTickResult {
        // Disabled paths carry no media, so their rate estimates decay: a
        // re-enabled path then re-enters with a conservative share and
        // ramps with real feedback instead of bursting at a stale rate.
        for path in self.scheduler.disabled_paths() {
            if let Some(ctl) = self.cc.get_mut(&path) {
                ctl.cap_estimate(500_000.0);
            }
        }
        // Coupled mode: dampen each controller's growth by its share of
        // the aggregate estimate, so the sum increases like a single flow.
        if self.coupling == RateCoupling::Lia {
            let total: f64 = self.cc.values().map(|c| c.delay_estimate_bps()).sum();
            if total > 0.0 {
                for ctl in self.cc.values_mut() {
                    let share = ctl.delay_estimate_bps() / total;
                    ctl.set_increase_scale(share);
                }
            }
        }
        // Advance the liveness timers; a path that went silent also loses
        // its stale rate estimate so recovery starts conservatively.
        for ev in self.monitor.poll(now) {
            if ev.state == PathState::Down {
                if let Some(ctl) = self.cc.get_mut(&ev.path) {
                    ctl.cap_estimate(500_000.0);
                }
            }
        }
        let metrics = self.path_metrics();
        // Encoder rate: min(aggregate over used paths, app cap), divided
        // across streams.
        let used = self.scheduler.used_paths(&metrics);
        let aggregate: u64 = metrics
            .iter()
            .filter(|m| used.contains(&m.id))
            .map(|m| m.rate_bps)
            .sum();
        let n_streams = self.streams.len().max(1) as u64;
        // FEC and media share the budget: discount the encoder target by
        // the measured protection overhead so aggressive FEC policies pay
        // for their repair packets with media quality (paper Fig. 6/13).
        let media_fraction = 1.0 / (1.0 + self.fec_overhead_ewma.max(0.0));
        let per_stream = (aggregate as f64 * media_fraction) as u64 / n_streams;

        let pipeline = &mut self.streams[stream_idx];
        pipeline.encoder.set_target_bitrate(per_stream);
        let frame = pipeline.encoder.encode(now);
        let qp = frame.qp;
        let height = frame.height;
        let mut packets = pipeline.packetizer.packetize(&frame);

        // Prepend pending retransmissions (highest priority, Table 2).
        let mut batch: Vec<Schedulable> = Vec::with_capacity(packets.len() + 4);
        while let Some(rtx) = self.rtx_queue.pop_front() {
            batch.push(Schedulable {
                packet: rtx,
                class: PacketClass::Retransmission,
            });
            if batch.len() >= 16 {
                break; // bound rtx burst per frame
            }
        }
        for p in packets.drain(..) {
            batch.push(Schedulable {
                packet: p,
                class: classify(&p),
            });
        }

        // CM blackout: the connection is re-establishing; everything in
        // this batch is lost at the application layer.
        if self.scheduler.drop_batch(now) {
            return FrameTickResult {
                packets: Vec::new(),
                qp,
                height,
            };
        }

        let assignments = self.scheduler.assign_batch(now, &batch, &metrics);
        debug_assert_eq!(assignments.len(), batch.len());

        let mut out: Vec<OutboundPacket> = Vec::with_capacity(batch.len() + 8);
        // Per-path media groups for FEC generation.
        let mut media_by_path: BTreeMap<PathId, Vec<VideoPacket>> = BTreeMap::new();
        let mut keyframe_by_path: BTreeMap<PathId, bool> = BTreeMap::new();

        for (sched, assign) in batch.iter().zip(&assignments) {
            let path = assign.path;
            let kind = match sched.class {
                PacketClass::Retransmission => RtpKind::Retransmission(sched.packet),
                _ => RtpKind::Media(sched.packet),
            };
            if sched.class != PacketClass::Retransmission {
                self.remember_media(&sched.packet, path);
            }
            if sched.packet.kind.is_media() {
                media_by_path.entry(path).or_default().push(sched.packet);
                if sched.packet.frame_type == FrameType::Key {
                    keyframe_by_path.insert(path, true);
                }
            }
            out.push(self.make_rtp(now, path, kind, sched.class));
        }

        // FEC per destination path (path-specific protection, §4.3).
        let mut fec_batch: Vec<(Schedulable, Vec<VideoPacket>, PathId)> = Vec::new();
        for (&path, media) in &media_by_path {
            let loss = metrics
                .iter()
                .find(|m| m.id == path)
                .map(|m| m.loss)
                .unwrap_or(0.0);
            let is_key = keyframe_by_path.get(&path).copied().unwrap_or(false);
            let n_fec = self.fec.repair_count(now, path, media.len(), loss, is_key);
            self.fec.on_batch_sent(path, media.len(), n_fec);
            if n_fec == 0 {
                continue;
            }
            // Split this path's media into n_fec contiguous groups.
            let base = media.len() / n_fec;
            let extra = media.len() % n_fec;
            let mut idx = 0;
            for g in 0..n_fec {
                let size = base + usize::from(g < extra);
                if size == 0 {
                    continue;
                }
                let protected: Vec<VideoPacket> = media[idx..idx + size].to_vec();
                idx += size;
                // FEC packets are scheduled too (priority level 5).
                let rep = protected
                    .iter()
                    .max_by_key(|p| p.size)
                    .expect("non-empty group");
                let fec_meta = VideoPacket {
                    kind: converge_video::PacketKind::Media { index: 0, count: 1 },
                    size: rep.size + 16,
                    ..*rep
                };
                fec_batch.push((
                    Schedulable {
                        packet: fec_meta,
                        class: PacketClass::Fec,
                    },
                    protected,
                    path,
                ));
            }
        }
        // Update the protection-overhead EWMA from this batch.
        {
            let media_bytes: usize = batch
                .iter()
                .filter(|s| s.packet.kind.is_media())
                .map(|s| s.packet.size)
                .sum();
            let fec_bytes: usize = fec_batch.iter().map(|(s, _, _)| s.packet.size).sum();
            if media_bytes > 0 {
                let overhead = fec_bytes as f64 / media_bytes as f64;
                self.fec_overhead_ewma = 0.9 * self.fec_overhead_ewma + 0.1 * overhead;
            }
        }
        if !fec_batch.is_empty() {
            let fec_sched: Vec<Schedulable> = fec_batch.iter().map(|(s, _, _)| *s).collect();
            let fec_assign = self.scheduler.assign_batch(now, &fec_sched, &metrics);
            for ((sched, protected, origin), assign) in fec_batch.into_iter().zip(fec_assign) {
                let stream = sched.packet.stream;
                out.push(self.make_rtp(
                    now,
                    assign.path,
                    RtpKind::Fec {
                        stream,
                        protected,
                        origin_path: origin,
                    },
                    PacketClass::Fec,
                ));
            }
        }

        // Probes for disabled paths.
        for path in self.scheduler.probe_paths(now, &metrics) {
            let probe_seq = self.next_probe_seq;
            self.next_probe_seq += 1;
            self.outstanding_probes.insert(probe_seq, (path, now));
            out.push(self.make_rtp(now, path, RtpKind::Probe { probe_seq }, PacketClass::Probe));
        }

        FrameTickResult {
            packets: out,
            qp,
            height,
        }
    }

    fn make_rtp(
        &mut self,
        now: SimTime,
        path: PathId,
        kind: RtpKind,
        class: PacketClass,
    ) -> OutboundPacket {
        let idx = match self.tx.iter().position(|(p, _)| *p == path) {
            Some(i) => i,
            None => {
                let at = self.tx.partition_point(|(p, _)| *p < path);
                self.tx
                    .insert(at, (path, PathTxState::with_slots(self.sizing.tx_slots)));
                at
            }
        };
        let tx = &mut self.tx[idx].1;
        let transport_seq = tx.next_transport_seq;
        tx.next_transport_seq += 1;
        let size = kind.wire_size();
        let mask = tx.sent.len() - 1;
        tx.sent[transport_seq as usize & mask] = Some((transport_seq, now, size));
        OutboundPacket {
            payload: NetPayload::Rtp(SimRtp {
                kind,
                path,
                transport_seq,
                sent_at: now,
            }),
            path,
            class,
        }
    }

    fn remember_media(&mut self, p: &VideoPacket, path: PathId) {
        let stream = p.stream.0 as usize;
        while self.sent_media.len() <= stream {
            self.sent_media
                .push(vec![None; self.sizing.media_slots].into_boxed_slice());
        }
        let ring = &mut self.sent_media[stream];
        let mask = ring.len() - 1;
        ring[p.sequence as usize & mask] = Some((*p, path));
    }

    /// Handles an incoming RTCP packet at `now`; may queue retransmissions
    /// or adjust state. Returns the number of newly queued retransmissions.
    pub fn on_rtcp(&mut self, now: SimTime, rtcp: &RtcpPacket) -> usize {
        // Any feedback on a path proves it alive in both directions.
        self.monitor.on_activity(now, PathId(rtcp.path_id()));
        match rtcp {
            RtcpPacket::ReceiverReport(rr) => {
                let path = PathId(rr.path_id);
                let protection = self.fec_overhead_ewma;
                if let Some(ctl) = self.cc.get_mut(&path) {
                    for blk in &rr.blocks {
                        ctl.on_loss_report_protected(blk.fraction_lost as f64 / 256.0, protection);
                        // RTT from last_sr/dlsr, both in simulation micros
                        // truncated: lsr holds sr send time (low 32 bits of
                        // ms), dlsr holds hold time in ms.
                        if blk.last_sr != 0 {
                            let sr_ms = blk.last_sr as u64;
                            let hold_ms = blk.delay_since_last_sr as u64;
                            let now_ms = now.as_millis() & 0xFFFF_FFFF;
                            if now_ms >= sr_ms + hold_ms {
                                let rtt = SimDuration::from_millis(now_ms - sr_ms - hold_ms);
                                ctl.on_rtt_sample(rtt);
                            }
                        }
                    }
                }
                0
            }
            RtcpPacket::TransportFeedback(tf) => {
                let path = PathId(tf.path_id);
                let timings: Vec<PacketTiming> = {
                    let Some(tx) = self
                        .tx
                        .iter_mut()
                        .find(|(p, _)| *p == path)
                        .map(|(_, t)| t)
                    else {
                        return 0;
                    };
                    tf.arrivals
                        .iter()
                        .filter_map(|&(seq, arrival_us)| {
                            let full = unwrap_seq16(seq, tx.highest_acked);
                            tx.highest_acked = tx.highest_acked.max(full);
                            let mask = tx.sent.len() - 1;
                            let slot = &mut tx.sent[full as usize & mask];
                            match *slot {
                                Some((s, send_time, size)) if s == full => {
                                    *slot = None;
                                    Some(PacketTiming {
                                        send_time,
                                        arrival_time: SimTime::from_micros(arrival_us),
                                        size,
                                    })
                                }
                                _ => None,
                            }
                        })
                        .collect()
                };
                if let Some(ctl) = self.cc.get_mut(&path) {
                    if !timings.is_empty() {
                        ctl.on_transport_feedback(now, &timings);
                    }
                }
                0
            }
            RtcpPacket::Nack(nack) => {
                let stream = StreamId((nack.ssrc & 0xFF) as u8);
                let mut queued = 0;
                let mut per_path: BTreeMap<PathId, usize> = BTreeMap::new();
                for &seq in &nack.lost {
                    // NACK wire carries u16; our media sequences are u64 —
                    // the session uses low 16 bits of the true sequence, so
                    // search recent media for a matching suffix.
                    if let Some((p, sent_path)) = self.lookup_media(stream, seq) {
                        self.rtx_queue.push_back(p);
                        queued += 1;
                        // Attribute the loss to the path the packet was
                        // actually sent on (drives β of the FEC policy).
                        *per_path.entry(sent_path).or_insert(0) += 1;
                    }
                }
                for (path, n) in per_path {
                    self.fec.on_nack(path, n);
                }
                queued
            }
            RtcpPacket::Pli(pli) => {
                let stream = (pli.ssrc & 0xFF) as usize;
                if let Some(s) = self.streams.get_mut(stream) {
                    s.encoder.request_keyframe();
                }
                0
            }
            RtcpPacket::QoeFeedback(fb) => {
                self.scheduler.on_qoe_feedback(now, fb);
                0
            }
            RtcpPacket::SenderReport(_) | RtcpPacket::Sdes(_) => 0,
        }
    }

    /// Handles a probe echo: measures the disabled path's RTT and attempts
    /// Eq. 3 re-enablement via the scheduler.
    pub fn on_probe_echo(&mut self, now: SimTime, probe_seq: u64) {
        let Some((path, sent_at)) = self.outstanding_probes.remove(&probe_seq) else {
            return;
        };
        let rtt = now.saturating_since(sent_at);
        self.monitor.on_activity(now, path);
        if let Some(ctl) = self.cc.get_mut(&path) {
            ctl.on_rtt_sample(rtt);
        }
        // Fast path = lowest-srtt enabled path.
        let metrics = self.path_metrics();
        let rtt_fast = metrics
            .iter()
            .filter(|m| m.id != path)
            .map(|m| m.srtt)
            .min()
            .unwrap_or(SimDuration::from_millis(100));
        self.scheduler.on_probe_rtt(now, path, rtt_fast, rtt);
    }

    fn lookup_media(&self, stream: StreamId, seq16: u16) -> Option<(VideoPacket, PathId)> {
        // The ring slot holds the newest sequence with these low index
        // bits; the stored packet's own sequence confirms the 16-bit NACK
        // reference actually names it (rings smaller than 2^16 slots alias
        // more than one 16-bit suffix per slot).
        let ring = self.sent_media.get(stream.0 as usize)?;
        let (p, path) = ring[seq16 as usize & (ring.len() - 1)]?;
        ((p.sequence & 0xFFFF) as u16 == seq16).then_some((p, path))
    }

    /// Builds the sender's periodic RTCP (SR per path + SDES with frame
    /// rate), one tuple per path.
    pub fn periodic_rtcp(&self, now: SimTime) -> Vec<(PathId, RtcpPacket)> {
        let mut out = Vec::new();
        for &path in self.cc.keys() {
            out.push((
                path,
                RtcpPacket::SenderReport(converge_rtp::SenderReport {
                    path_id: path.0,
                    ssrc: 0,
                    ntp_micros: now.as_micros(),
                    rtp_timestamp: (now.as_micros() / 11) as u32, // 90 kHz
                    packet_count: 0,
                    octet_count: 0,
                }),
            ));
        }
        if let Some((&first, _)) = self.cc.iter().next() {
            out.push((
                first,
                RtcpPacket::Sdes(converge_rtp::Sdes {
                    ssrc: 0,
                    cname: "converge-sender".into(),
                    frame_rate: Some(self.frame_rate() as u8),
                }),
            ));
        }
        out
    }
}
