//! The conference receiver: per-stream packet/frame buffers, FEC recovery,
//! NACK and keyframe-request generation, per-path transport statistics,
//! and the Converge QoE feedback monitor.

use std::collections::{BTreeMap, BTreeSet};

use converge_core::QoeMonitor;
use converge_net::{PathId, SimDuration, SimTime};
use converge_rtp::{
    Nack, Pli, QoeFeedback, ReceiverReport, ReportBlock, RtcpPacket, TransportFeedback,
};
use converge_video::{
    FrameBuffer, FrameBufferEvent, PacketBuffer, PacketBufferEvent, PacketKind, StreamId,
    VideoPacket,
};

use crate::payload::{RtpKind, SimRtp};

/// Events the receiver surfaces to the session for metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiverEvent {
    /// A frame was decoded; `e2e` is capture-to-decode latency.
    FrameDecoded {
        /// The stream.
        stream: StreamId,
        /// Decode instant.
        at: SimTime,
        /// End-to-end latency (including FEC processing penalty if used).
        e2e: SimDuration,
    },
    /// A frame was abandoned.
    FrameDropped {
        /// The stream the frame belonged to.
        stream: StreamId,
        /// Why (packet-buffer evictions map to `BufferFull`).
        reason: converge_video::DropReason,
    },
    /// An IFD observation.
    Ifd {
        /// Observation time.
        at: SimTime,
        /// The interframe delay.
        ifd: SimDuration,
    },
    /// An FCD observation.
    Fcd {
        /// Observation time.
        at: SimTime,
        /// The frame construction delay.
        fcd: SimDuration,
    },
    /// A FEC packet was used to recover a loss.
    FecRecovered,
    /// A FEC packet arrived.
    FecReceived,
}

/// Per-path receive statistics for one RTCP interval.
#[derive(Debug, Default)]
struct PathRxState {
    /// Highest transport sequence seen.
    max_transport_seq: Option<u64>,
    /// Transport seqs received since the last feedback, with arrival times.
    pending_feedback: Vec<(u64, SimTime)>,
    /// Packets received in the current loss-report interval.
    received_in_interval: u64,
    /// First transport seq of the interval.
    interval_start_seq: Option<u64>,
    /// Cumulative lost estimate.
    cumulative_lost: u64,
    /// RFC 3550 interarrival jitter estimate, microseconds.
    jitter_us: f64,
    /// Transit time (arrival − send) of the previous packet, for the
    /// jitter difference.
    last_transit_us: Option<i64>,
}

impl PathRxState {
    /// Feeds one packet's timing into the RFC 3550 jitter filter:
    /// `J += (|D| − J) / 16` where `D` is the transit-time difference of
    /// consecutive packets.
    fn update_jitter(&mut self, sent_at: SimTime, arrived_at: SimTime) {
        let transit = arrived_at.as_micros() as i64 - sent_at.as_micros() as i64;
        if let Some(prev) = self.last_transit_us {
            let d = (transit - prev).abs() as f64;
            self.jitter_us += (d - self.jitter_us) / 16.0;
        }
        self.last_transit_us = Some(transit);
    }
}

/// Per-stream receive pipeline.
/// Slots in the per-stream `recent` ring (a power of two so the index is
/// a mask).
const RECENT_SLOTS: usize = 1 << 12;

struct StreamRx {
    packet_buffer: PacketBuffer,
    frame_buffer: FrameBuffer,
    monitor: QoeMonitor,
    /// Highest media sequence seen (for NACK gap detection).
    max_media_seq: Option<u64>,
    /// Missing media seqs → when first noticed.
    missing: BTreeMap<u64, SimTime>,
    /// NACK attempts per missing seq.
    nacked: BTreeMap<u64, u8>,
    /// Recently received media packets for FEC recovery: a ring indexed
    /// by `sequence % RECENT_SLOTS`, each slot holding the newest packet
    /// in its residue class (the stored packet's own sequence confirms a
    /// hit). Touched on every media arrival; one indexed store replaces a
    /// hash insert plus FIFO eviction with the same ~4 096-sequence
    /// retention horizon, far beyond the frame-scale window FEC groups
    /// actually span.
    recent: Box<[Option<VideoPacket>]>,
    /// FCD of the last completed frame (paired with the frame-buffer IFD).
    last_fcd: SimDuration,
    /// Frames completed thanks to FEC recovery (latency penalty applies).
    fec_assisted: BTreeSet<u64>,
    /// Whether the decode chain broke and a keyframe is needed.
    keyframe_needed: bool,
}

/// An FEC group waiting for a recovery opportunity.
struct PendingFec {
    stream: StreamId,
    protected: Vec<VideoPacket>,
    arrived_at: SimTime,
    /// Smallest and largest protected media sequence, so an arriving
    /// packet can rule the whole group out with two integer compares
    /// instead of scanning `protected`.
    min_seq: u64,
    max_seq: u64,
}

/// The conference receiver.
pub struct ConferenceReceiver {
    streams: BTreeMap<StreamId, StreamRx>,
    /// Per-path transport state, sorted by `PathId`. A handful of paths
    /// at most: a sorted Vec beats a tree map for the per-packet lookup
    /// while keeping the iteration order RTCP emission depends on.
    paths: Vec<(PathId, PathRxState)>,
    pending_fec: Vec<PendingFec>,
    /// Set when the last recovery pass inserted recovered packets into
    /// `recent`: those inserts can complete further (overlapping) groups,
    /// so the next pass must evaluate every group, not just the ones the
    /// triggering packet belongs to.
    fec_full_sweep: bool,
    /// Keyframe request cooldown per stream.
    last_pli: BTreeMap<StreamId, SimTime>,
    pli_cooldown: SimDuration,
    /// How long a gap must persist before NACKing (reordering tolerance).
    nack_delay: SimDuration,
    /// Decode-pipeline latency applied to every frame.
    decode_latency: SimDuration,
    /// Extra latency when a frame needed FEC recovery (paper §2.1: "FEC
    /// decoding incurs non-negligible latency").
    fec_penalty: SimDuration,
    /// PLIs issued.
    pli_count: u64,
}

impl ConferenceReceiver {
    /// Creates a receiver for `n_streams` streams over `paths`, expecting
    /// `fps` frames per second per stream.
    pub fn new(n_streams: u8, paths: &[PathId], fps: u32, fast_path: PathId) -> Self {
        Self::new_sized(n_streams, paths, fps, fast_path, RECENT_SLOTS)
    }

    /// Creates a receiver with an explicit per-stream `recent` ring size
    /// (a power of two). Fleet runs shrink the ring: every hit is verified
    /// against the stored packet's own sequence, so a smaller ring only
    /// shortens the FEC-recovery horizon, never corrupts it.
    pub fn new_sized(
        n_streams: u8,
        paths: &[PathId],
        fps: u32,
        fast_path: PathId,
        recent_slots: usize,
    ) -> Self {
        assert!(recent_slots.is_power_of_two());
        let streams = (0..n_streams)
            .map(|i| {
                (
                    StreamId(i),
                    StreamRx {
                        packet_buffer: PacketBuffer::new(768),
                        frame_buffer: FrameBuffer::new(12),
                        monitor: QoeMonitor::new(i as u32, fps, fast_path),
                        max_media_seq: None,
                        missing: BTreeMap::new(),
                        nacked: BTreeMap::new(),
                        recent: vec![None; recent_slots].into_boxed_slice(),
                        last_fcd: SimDuration::ZERO,
                        fec_assisted: BTreeSet::new(),
                        keyframe_needed: false,
                    },
                )
            })
            .collect();
        ConferenceReceiver {
            streams,
            paths: {
                let mut v: Vec<(PathId, PathRxState)> =
                    paths.iter().map(|&p| (p, PathRxState::default())).collect();
                v.sort_by_key(|(p, _)| *p);
                v
            },
            pending_fec: Vec::new(),
            fec_full_sweep: false,
            last_pli: BTreeMap::new(),
            pli_cooldown: SimDuration::from_millis(500),
            nack_delay: SimDuration::from_millis(60),
            decode_latency: SimDuration::from_millis(20),
            fec_penalty: SimDuration::from_millis(10),
            pli_count: 0,
        }
    }

    /// Total PLIs issued.
    pub fn pli_count(&self) -> u64 {
        self.pli_count
    }

    /// Installs a trace handle on every stream's QoE monitor.
    pub fn set_trace(&mut self, trace: converge_trace::TraceHandle) {
        for rx in self.streams.values_mut() {
            rx.monitor.set_trace(trace.clone());
        }
    }

    /// Updates which path the QoE monitors treat as the fast reference.
    pub fn set_fast_path(&mut self, path: PathId) {
        for rx in self.streams.values_mut() {
            rx.monitor.set_fast_path(path);
        }
    }

    /// Handles the sender's SDES frame-rate advertisement.
    pub fn on_sdes_frame_rate(&mut self, fps: u32) {
        for rx in self.streams.values_mut() {
            rx.monitor.set_frame_rate(fps);
        }
    }

    /// Processes one arriving RTP packet; returns receiver events.
    pub fn on_rtp(&mut self, now: SimTime, rtp: &SimRtp) -> Vec<ReceiverEvent> {
        // Per-path transport accounting (all RTP kinds count).
        let idx = match self.paths.iter().position(|(p, _)| *p == rtp.path) {
            Some(i) => i,
            None => {
                let at = self
                    .paths
                    .partition_point(|(p, _)| *p < rtp.path);
                self.paths.insert(at, (rtp.path, PathRxState::default()));
                at
            }
        };
        let path_state = &mut self.paths[idx].1;
        path_state.pending_feedback.push((rtp.transport_seq, now));
        path_state.received_in_interval += 1;
        path_state.update_jitter(rtp.sent_at, now);
        path_state.max_transport_seq = Some(
            path_state
                .max_transport_seq
                .map_or(rtp.transport_seq, |m| m.max(rtp.transport_seq)),
        );

        let mut events = Vec::new();
        match &rtp.kind {
            RtpKind::Media(p) | RtpKind::Retransmission(p) => {
                self.on_video_packet(now, rtp.path, *p, &mut events);
            }
            RtpKind::Fec {
                stream, protected, ..
            } => {
                events.push(ReceiverEvent::FecReceived);
                let min_seq = protected.iter().map(|p| p.sequence).min().unwrap_or(0);
                let max_seq = protected.iter().map(|p| p.sequence).max().unwrap_or(0);
                self.pending_fec.push(PendingFec {
                    stream: *stream,
                    protected: protected.clone(),
                    arrived_at: now,
                    min_seq,
                    max_seq,
                });
                self.try_fec_recovery(now, None, &mut events);
                // Bound memory: drop stale groups.
                self.pending_fec
                    .retain(|g| now.saturating_since(g.arrived_at) < SimDuration::from_secs(2));
            }
            RtpKind::Probe { .. } => {}
        }
        events
    }

    fn on_video_packet(
        &mut self,
        now: SimTime,
        path: PathId,
        packet: VideoPacket,
        events: &mut Vec<ReceiverEvent>,
    ) {
        let decode_latency = self.decode_latency;
        let fec_penalty = self.fec_penalty;
        let Some(rx) = self.streams.get_mut(&packet.stream) else {
            return;
        };

        // NACK gap tracking on media sequences.
        match rx.max_media_seq {
            None => rx.max_media_seq = Some(packet.sequence),
            Some(max) if packet.sequence > max => {
                for missing in (max + 1)..packet.sequence {
                    rx.missing.entry(missing).or_insert(now);
                }
                rx.max_media_seq = Some(packet.sequence);
            }
            Some(_) => {
                // Filling a gap (reordered or retransmitted).
                rx.missing.remove(&packet.sequence);
                rx.nacked.remove(&packet.sequence);
            }
        }

        // Remember for FEC recovery.
        let mask = rx.recent.len() - 1;
        rx.recent[packet.sequence as usize & mask] = Some(packet);

        rx.monitor.on_packet(now, path, packet.frame_id);
        if packet.kind == PacketKind::Sps {
            // SPS feeds the GOP ledger, not the packet buffer.
            rx.frame_buffer.sps_received(packet.gop_id);
        } else {
            let pb_events = rx.packet_buffer.insert(now, &packet);
            Self::process_pb_events(
                rx,
                packet.stream,
                now,
                pb_events,
                events,
                decode_latency,
                fec_penalty,
            );
        }

        // A late media packet may make a pending FEC group recoverable —
        // but only a group protecting this very sequence can change state,
        // so the pass skips every other group.
        self.try_fec_recovery(now, Some((packet.stream, packet.sequence)), events);
    }

    fn process_pb_events(
        rx: &mut StreamRx,
        stream: StreamId,
        now: SimTime,
        pb_events: Vec<PacketBufferEvent>,
        events: &mut Vec<ReceiverEvent>,
        decode_latency: SimDuration,
        fec_penalty: SimDuration,
    ) {
        for ev in pb_events {
            match ev {
                PacketBufferEvent::FrameComplete(frame) => {
                    rx.last_fcd = frame.fcd();
                    events.push(ReceiverEvent::Fcd {
                        at: now,
                        fcd: frame.fcd(),
                    });
                    let fb_events = rx.frame_buffer.insert(now, frame);
                    for fe in fb_events {
                        match fe {
                            FrameBufferEvent::FrameEntered { frame_id, ifd } => {
                                if let Some(ifd) = ifd {
                                    events.push(ReceiverEvent::Ifd { at: now, ifd });
                                }
                                rx.monitor.on_frame_entered(now, frame_id, ifd, rx.last_fcd);
                            }
                            FrameBufferEvent::Decoded { frame, at } => {
                                let mut e2e =
                                    at.saturating_since(frame.capture_time) + decode_latency;
                                if rx.fec_assisted.remove(&frame.frame_id) {
                                    e2e += fec_penalty;
                                }
                                events.push(ReceiverEvent::FrameDecoded {
                                    stream: frame.stream,
                                    at,
                                    e2e,
                                });
                            }
                            FrameBufferEvent::Dropped { frame_id, reason } => {
                                rx.packet_buffer.purge_frame(frame_id);
                                events.push(ReceiverEvent::FrameDropped { stream, reason });
                            }
                            FrameBufferEvent::KeyframeNeeded => {
                                rx.keyframe_needed = true;
                            }
                        }
                    }
                }
                PacketBufferEvent::FrameEvicted { .. } => {
                    events.push(ReceiverEvent::FrameDropped {
                        stream,
                        reason: converge_video::DropReason::BufferFull,
                    });
                }
                PacketBufferEvent::StalePacket { .. } | PacketBufferEvent::Duplicate { .. } => {}
            }
        }
    }

    /// Attempts FEC recovery across pending groups.
    ///
    /// `trigger` names the media packet whose arrival prompted the pass.
    /// A group not protecting that sequence cannot have become
    /// recoverable since its last evaluation (`recent` evictions only
    /// grow a group's missing set, and every kept group had at least two
    /// packets missing), so such groups are skipped untouched. `None`
    /// — and any pass right after one that inserted recovered packets,
    /// which are extra `recent` changes a filter would miss — evaluates
    /// everything.
    fn try_fec_recovery(
        &mut self,
        now: SimTime,
        trigger: Option<(StreamId, u64)>,
        events: &mut Vec<ReceiverEvent>,
    ) {
        if self.pending_fec.is_empty() {
            self.fec_full_sweep = false;
            return;
        }
        let trigger = if self.fec_full_sweep { None } else { trigger };
        let mut recovered: Vec<(StreamId, VideoPacket)> = Vec::new();
        let streams = &self.streams;
        self.pending_fec.retain(|group| {
            if let Some((stream, seq)) = trigger {
                if group.stream != stream || seq < group.min_seq || seq > group.max_seq {
                    return true;
                }
            }
            let Some(rx) = streams.get(&group.stream) else {
                return false;
            };
            // Only the 0 / 1 / many distinction matters, so stop counting
            // at the second miss.
            let mut only_missing: Option<&VideoPacket> = None;
            let mut misses = 0usize;
            for p in &group.protected {
                let slot = &rx.recent[p.sequence as usize & (rx.recent.len() - 1)];
                if !matches!(slot, Some(q) if q.sequence == p.sequence) {
                    misses += 1;
                    if misses > 1 {
                        break;
                    }
                    only_missing = Some(p);
                }
            }
            match misses {
                0 => false, // everything arrived; group no longer needed
                1 => {
                    let p = *only_missing.expect("one miss recorded");
                    // Only useful if the frame hasn't been abandoned.
                    if rx.packet_buffer.is_finished(p.frame_id)
                        || rx.frame_buffer.is_abandoned(p.frame_id)
                    {
                        return false;
                    }
                    recovered.push((group.stream, p));
                    false
                }
                _ => true, // keep waiting for more packets
            }
        });
        let decode_latency = self.decode_latency;
        let fec_penalty = self.fec_penalty;
        self.fec_full_sweep = !recovered.is_empty();
        for (stream, packet) in recovered {
            events.push(ReceiverEvent::FecRecovered);
            if let Some(rx) = self.streams.get_mut(&stream) {
                rx.fec_assisted.insert(packet.frame_id);
                // A recovered packet no longer needs NACKing.
                rx.missing.remove(&packet.sequence);
                rx.nacked.remove(&packet.sequence);
                let mask = rx.recent.len() - 1;
                rx.recent[packet.sequence as usize & mask] = Some(packet);
                if packet.kind == PacketKind::Sps {
                    rx.frame_buffer.sps_received(packet.gop_id);
                } else {
                    let pb_events = rx.packet_buffer.insert(now, &packet);
                    Self::process_pb_events(
                        rx,
                        stream,
                        now,
                        pb_events,
                        events,
                        decode_latency,
                        fec_penalty,
                    );
                }
            }
        }
    }

    /// Builds the periodic RTCP batch: per-path RR + transport feedback,
    /// NACKs for persistent gaps, PLIs for broken decode chains, and QoE
    /// feedback from the monitors. Returns `(path, packet)` pairs — each
    /// path's reports travel back over that same path. `sr_info` maps path
    /// → (last SR send-time ms, SR arrival instant) for RTT computation.
    pub fn poll_rtcp(
        &mut self,
        now: SimTime,
        sr_info: &BTreeMap<PathId, (u64, SimTime)>,
    ) -> Vec<(PathId, RtcpPacket)> {
        self.poll_rtcp_with(now, sr_info, true)
    }

    /// Like [`ConferenceReceiver::poll_rtcp`], but transport feedback and
    /// receiver reports (which drive GCC) are only included when
    /// `include_transport` is set. The paper's GCC runs off RTCP-paced
    /// reports, which are slower than the QoE/NACK feedback loop.
    pub fn poll_rtcp_with(
        &mut self,
        now: SimTime,
        sr_info: &BTreeMap<PathId, (u64, SimTime)>,
        include_transport: bool,
    ) -> Vec<(PathId, RtcpPacket)> {
        let mut out = Vec::new();

        for (path, st) in self.paths.iter_mut() {
            let path = *path;
            if !include_transport {
                break;
            }
            if !st.pending_feedback.is_empty() {
                let arrivals: Vec<(u16, u64)> = st
                    .pending_feedback
                    .drain(..)
                    .map(|(seq, at)| ((seq & 0xFFFF) as u16, at.as_micros()))
                    .collect();
                out.push((
                    path,
                    RtcpPacket::TransportFeedback(TransportFeedback {
                        path_id: path.0,
                        ssrc: 0,
                        arrivals,
                    }),
                ));
            }
            // Loss estimate over the interval from transport seq deltas.
            let fraction_lost = match (st.interval_start_seq, st.max_transport_seq) {
                (Some(start), Some(max)) if max >= start => {
                    let expected = max - start + 1;
                    let lost = expected.saturating_sub(st.received_in_interval);
                    st.cumulative_lost += lost;
                    if expected > 0 {
                        lost as f64 / expected as f64
                    } else {
                        0.0
                    }
                }
                _ => 0.0,
            };
            st.interval_start_seq = st.max_transport_seq.map(|m| m + 1);
            st.received_in_interval = 0;

            let (lsr, dlsr) = sr_info
                .get(&path)
                .map(|&(sr_ms, arrived)| {
                    (
                        (sr_ms & 0xFFFF_FFFF) as u32,
                        (now.saturating_since(arrived).as_millis() & 0xFFFF_FFFF) as u32,
                    )
                })
                .unwrap_or((0, 0));
            out.push((
                path,
                RtcpPacket::ReceiverReport(ReceiverReport {
                    path_id: path.0,
                    ssrc: 0,
                    blocks: vec![ReportBlock {
                        ssrc: 0,
                        fraction_lost: (fraction_lost * 256.0).min(255.0) as u8,
                        cumulative_lost: st.cumulative_lost.min(0xFF_FFFF) as u32,
                        ext_highest_seq: st.max_transport_seq.unwrap_or(0) as u32,
                        ext_highest_mp_seq: st.max_transport_seq.unwrap_or(0) as u32,
                        // Jitter reported in 90 kHz RTP timestamp units as
                        // RFC 3550 specifies (micros × 0.09).
                        jitter: (st.jitter_us * 0.09) as u32,
                        last_sr: lsr,
                        delay_since_last_sr: dlsr,
                    }],
                }),
            ));
        }

        // Control messages travel on the first path (small packets; the
        // emulated reverse directions are uncongested).
        let control_path = self.paths.first().expect("at least one path").0;

        for (&stream, rx) in self.streams.iter_mut() {
            // NACKs: gaps older than the reordering delay, max 2 attempts.
            let mut to_nack: Vec<u16> = Vec::new();
            let mut give_up: Vec<u64> = Vec::new();
            for (&seq, &first_seen) in &rx.missing {
                if now.saturating_since(first_seen) < self.nack_delay {
                    continue;
                }
                let attempts = rx.nacked.get(&seq).copied().unwrap_or(0);
                if attempts >= 2 {
                    give_up.push(seq);
                    continue;
                }
                rx.nacked.insert(seq, attempts + 1);
                to_nack.push((seq & 0xFFFF) as u16);
                if to_nack.len() >= 30 {
                    break;
                }
            }
            for seq in give_up {
                rx.missing.remove(&seq);
                rx.nacked.remove(&seq);
            }
            if !to_nack.is_empty() {
                out.push((
                    control_path,
                    RtcpPacket::Nack(Nack {
                        path_id: control_path.0,
                        ssrc: stream.0 as u32,
                        lost: to_nack,
                    }),
                ));
            }

            // PLI with cooldown.
            if rx.keyframe_needed {
                let due = self
                    .last_pli
                    .get(&stream)
                    .is_none_or(|&t| now.saturating_since(t) >= self.pli_cooldown);
                if due {
                    self.last_pli.insert(stream, now);
                    self.pli_count += 1;
                    out.push((
                        control_path,
                        RtcpPacket::Pli(Pli {
                            path_id: control_path.0,
                            ssrc: stream.0 as u32,
                        }),
                    ));
                }
                rx.keyframe_needed = false;
            }

            // QoE feedback from the monitor.
            for fb in rx.monitor.take_feedback() {
                out.push((
                    control_path,
                    RtcpPacket::QoeFeedback(QoeFeedback {
                        ssrc: stream.0 as u32,
                        ..fb
                    }),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use converge_video::FrameType;

    const P0: PathId = PathId(0);
    const P1: PathId = PathId(1);

    fn receiver() -> ConferenceReceiver {
        ConferenceReceiver::new(1, &[P0, P1], 30, P0)
    }

    fn vp(seq: u64, frame_id: u64, kind: PacketKind) -> VideoPacket {
        VideoPacket {
            stream: StreamId(0),
            sequence: seq,
            frame_id,
            gop_id: 0,
            frame_type: if frame_id == 0 {
                FrameType::Key
            } else {
                FrameType::Delta
            },
            kind,
            size: 1200,
            capture_time: SimTime::from_millis(frame_id * 33),
        }
    }

    fn rtp(tseq: u64, kind: RtpKind) -> SimRtp {
        SimRtp {
            kind,
            path: P0,
            transport_seq: tseq,
            sent_at: SimTime::ZERO,
        }
    }

    /// Frame 0: SPS(0) PPS(1) M0(2) M1(3).
    fn frame0_packets() -> Vec<VideoPacket> {
        vec![
            vp(0, 0, PacketKind::Sps),
            vp(1, 0, PacketKind::Pps),
            vp(2, 0, PacketKind::Media { index: 0, count: 2 }),
            vp(3, 0, PacketKind::Media { index: 1, count: 2 }),
        ]
    }

    #[test]
    fn complete_frame_decodes() {
        let mut r = receiver();
        let mut decoded = 0;
        for (i, p) in frame0_packets().into_iter().enumerate() {
            let evs = r.on_rtp(
                SimTime::from_millis(40 + i as u64),
                &rtp(i as u64, RtpKind::Media(p)),
            );
            decoded += evs
                .iter()
                .filter(|e| matches!(e, ReceiverEvent::FrameDecoded { .. }))
                .count();
        }
        assert_eq!(decoded, 1);
    }

    #[test]
    fn e2e_includes_decode_latency() {
        let mut r = receiver();
        let mut e2e = None;
        for (i, p) in frame0_packets().into_iter().enumerate() {
            let evs = r.on_rtp(SimTime::from_millis(50), &rtp(i as u64, RtpKind::Media(p)));
            for e in evs {
                if let ReceiverEvent::FrameDecoded { e2e: v, .. } = e {
                    e2e = Some(v);
                }
            }
        }
        // Capture at 0, decode at 50 ms + 20 ms pipeline = 70 ms.
        assert_eq!(e2e.unwrap().as_millis(), 70);
    }

    #[test]
    fn gap_triggers_nack_after_delay() {
        let mut r = receiver();
        // Deliver seq 0 and 5: gap 1..=4.
        r.on_rtp(
            SimTime::from_millis(0),
            &rtp(0, RtpKind::Media(vp(0, 0, PacketKind::Sps))),
        );
        r.on_rtp(
            SimTime::from_millis(5),
            &rtp(1, RtpKind::Media(vp(5, 1, PacketKind::Pps))),
        );
        // Too early: no NACK yet.
        let rtcp = r.poll_rtcp(SimTime::from_millis(20), &BTreeMap::new());
        assert!(!rtcp.iter().any(|(_, p)| matches!(p, RtcpPacket::Nack(_))));
        // After the reordering delay: NACK for 1..=4.
        let rtcp = r.poll_rtcp(SimTime::from_millis(100), &BTreeMap::new());
        let nack = rtcp
            .iter()
            .find_map(|(_, p)| match p {
                RtcpPacket::Nack(n) => Some(n),
                _ => None,
            })
            .expect("nack expected");
        assert_eq!(nack.lost, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nack_gives_up_after_two_attempts() {
        let mut r = receiver();
        r.on_rtp(
            SimTime::ZERO,
            &rtp(0, RtpKind::Media(vp(0, 0, PacketKind::Sps))),
        );
        r.on_rtp(
            SimTime::from_millis(1),
            &rtp(1, RtpKind::Media(vp(2, 0, PacketKind::Pps))),
        );
        let count_nacks = |rtcp: &[(PathId, RtcpPacket)]| {
            rtcp.iter()
                .filter(|(_, p)| matches!(p, RtcpPacket::Nack(_)))
                .count()
        };
        assert_eq!(
            count_nacks(&r.poll_rtcp(SimTime::from_millis(100), &BTreeMap::new())),
            1
        );
        assert_eq!(
            count_nacks(&r.poll_rtcp(SimTime::from_millis(200), &BTreeMap::new())),
            1
        );
        // Third attempt: given up.
        assert_eq!(
            count_nacks(&r.poll_rtcp(SimTime::from_millis(300), &BTreeMap::new())),
            0
        );
    }

    #[test]
    fn retransmission_fills_gap() {
        let mut r = receiver();
        r.on_rtp(
            SimTime::ZERO,
            &rtp(0, RtpKind::Media(vp(0, 0, PacketKind::Sps))),
        );
        r.on_rtp(
            SimTime::from_millis(1),
            &rtp(1, RtpKind::Media(vp(2, 0, PacketKind::Pps))),
        );
        // Retransmission of seq 1 arrives before the NACK timer.
        r.on_rtp(
            SimTime::from_millis(30),
            &rtp(
                2,
                RtpKind::Retransmission(vp(1, 0, PacketKind::Media { index: 0, count: 2 })),
            ),
        );
        let rtcp = r.poll_rtcp(SimTime::from_millis(100), &BTreeMap::new());
        assert!(!rtcp.iter().any(|(_, p)| matches!(p, RtcpPacket::Nack(_))));
    }

    #[test]
    fn fec_recovers_single_missing_packet() {
        let mut r = receiver();
        let pkts = frame0_packets();
        // Deliver all but the last media packet.
        for (i, p) in pkts.iter().take(3).enumerate() {
            r.on_rtp(
                SimTime::from_millis(i as u64),
                &rtp(i as u64, RtpKind::Media(*p)),
            );
        }
        // FEC protecting both media packets arrives.
        let evs = r.on_rtp(
            SimTime::from_millis(10),
            &rtp(
                3,
                RtpKind::Fec {
                    stream: StreamId(0),
                    protected: vec![pkts[2], pkts[3]],
                    origin_path: P0,
                },
            ),
        );
        assert!(evs.contains(&ReceiverEvent::FecRecovered));
        assert!(evs
            .iter()
            .any(|e| matches!(e, ReceiverEvent::FrameDecoded { .. })));
    }

    #[test]
    fn fec_cannot_recover_two_losses_until_one_arrives() {
        let mut r = receiver();
        let pkts = frame0_packets();
        // Only SPS and PPS arrive; both media packets missing.
        for (i, p) in pkts.iter().take(2).enumerate() {
            r.on_rtp(
                SimTime::from_millis(i as u64),
                &rtp(i as u64, RtpKind::Media(*p)),
            );
        }
        let evs = r.on_rtp(
            SimTime::from_millis(10),
            &rtp(
                2,
                RtpKind::Fec {
                    stream: StreamId(0),
                    protected: vec![pkts[2], pkts[3]],
                    origin_path: P0,
                },
            ),
        );
        assert!(!evs.contains(&ReceiverEvent::FecRecovered));
        // Group stays pending: a late media arrival triggers recovery.
        let evs = r.on_rtp(SimTime::from_millis(20), &rtp(3, RtpKind::Media(pkts[2])));
        assert!(evs.contains(&ReceiverEvent::FecRecovered));
    }

    #[test]
    fn fec_adds_latency_penalty() {
        let mut r = receiver();
        let pkts = frame0_packets();
        for (i, p) in pkts.iter().take(3).enumerate() {
            r.on_rtp(SimTime::from_millis(50), &rtp(i as u64, RtpKind::Media(*p)));
        }
        let evs = r.on_rtp(
            SimTime::from_millis(50),
            &rtp(
                3,
                RtpKind::Fec {
                    stream: StreamId(0),
                    protected: vec![pkts[2], pkts[3]],
                    origin_path: P0,
                },
            ),
        );
        let e2e = evs
            .iter()
            .find_map(|e| match e {
                ReceiverEvent::FrameDecoded { e2e, .. } => Some(*e2e),
                _ => None,
            })
            .expect("decoded");
        // 50 ms transit + 20 ms decode + 10 ms FEC penalty.
        assert_eq!(e2e.as_millis(), 80);
    }

    #[test]
    fn loss_reported_in_receiver_report() {
        let mut r = receiver();
        // Transport seqs 0 and 9 received → 8 lost in the interval.
        r.on_rtp(SimTime::ZERO, &rtp(0, RtpKind::Probe { probe_seq: 0 }));
        r.on_rtp(
            SimTime::from_millis(5),
            &rtp(9, RtpKind::Probe { probe_seq: 1 }),
        );
        // First poll establishes the interval; loss shows in the second.
        let rtcp = r.poll_rtcp(SimTime::from_millis(100), &BTreeMap::new());
        let rr = rtcp
            .iter()
            .find_map(|(p, pkt)| match pkt {
                RtcpPacket::ReceiverReport(rr) if *p == P0 => Some(rr),
                _ => None,
            })
            .expect("rr");
        let frac = rr.blocks[0].fraction_lost as f64 / 256.0;
        assert!(frac <= 0.01, "first interval has no baseline: {frac}");
        // Next interval: seqs 10..=19, only 10 and 19 received.
        r.on_rtp(
            SimTime::from_millis(110),
            &rtp(10, RtpKind::Probe { probe_seq: 2 }),
        );
        r.on_rtp(
            SimTime::from_millis(120),
            &rtp(19, RtpKind::Probe { probe_seq: 3 }),
        );
        let rtcp = r.poll_rtcp(SimTime::from_millis(200), &BTreeMap::new());
        let rr = rtcp
            .iter()
            .find_map(|(p, pkt)| match pkt {
                RtcpPacket::ReceiverReport(rr) if *p == P0 => Some(rr),
                _ => None,
            })
            .expect("rr");
        let frac = rr.blocks[0].fraction_lost as f64 / 256.0;
        assert!((frac - 0.8).abs() < 0.01, "{frac}");
    }

    #[test]
    fn transport_feedback_carries_arrivals() {
        let mut r = receiver();
        r.on_rtp(
            SimTime::from_millis(7),
            &rtp(42, RtpKind::Probe { probe_seq: 0 }),
        );
        let rtcp = r.poll_rtcp(SimTime::from_millis(50), &BTreeMap::new());
        let tf = rtcp
            .iter()
            .find_map(|(_, p)| match p {
                RtcpPacket::TransportFeedback(tf) => Some(tf),
                _ => None,
            })
            .expect("tf");
        assert_eq!(tf.arrivals, vec![(42, 7_000)]);
        // Drained: next poll has no transport feedback.
        let rtcp = r.poll_rtcp(SimTime::from_millis(100), &BTreeMap::new());
        assert!(!rtcp
            .iter()
            .any(|(_, p)| matches!(p, RtcpPacket::TransportFeedback(_))));
    }

    #[test]
    fn pli_issued_when_decode_chain_breaks() {
        let mut r = receiver();
        // A complete delta frame before any keyframe → KeyframeNeeded.
        let mut pps = vp(1, 5, PacketKind::Pps);
        pps.frame_type = FrameType::Delta;
        let mut m = vp(2, 5, PacketKind::Media { index: 0, count: 1 });
        m.frame_type = FrameType::Delta;
        r.on_rtp(SimTime::from_millis(1), &rtp(1, RtpKind::Media(pps)));
        r.on_rtp(SimTime::from_millis(2), &rtp(2, RtpKind::Media(m)));
        let rtcp = r.poll_rtcp(SimTime::from_millis(10), &BTreeMap::new());
        assert!(rtcp.iter().any(|(_, p)| matches!(p, RtcpPacket::Pli(_))));
        assert_eq!(r.pli_count(), 1);
    }

    #[test]
    fn jitter_estimate_tracks_delay_variation() {
        let mut r = receiver();
        // Constant transit: jitter stays ~0.
        for i in 0..50u64 {
            r.on_rtp(
                SimTime::from_millis(i * 20 + 30),
                &SimRtp {
                    kind: RtpKind::Probe { probe_seq: i },
                    path: P0,
                    transport_seq: i,
                    sent_at: SimTime::from_millis(i * 20),
                },
            );
        }
        let rtcp = r.poll_rtcp(SimTime::from_secs(2), &BTreeMap::new());
        let rr0 = rtcp
            .iter()
            .find_map(|(p, pkt)| match pkt {
                RtcpPacket::ReceiverReport(rr) if *p == P0 => Some(rr),
                _ => None,
            })
            .expect("rr");
        assert!(
            rr0.blocks[0].jitter < 5,
            "constant transit: {}",
            rr0.blocks[0].jitter
        );
        // Alternating transit on P1: jitter grows.
        let mut r = receiver();
        for i in 0..50u64 {
            let wobble = if i % 2 == 0 { 0 } else { 20 };
            r.on_rtp(
                SimTime::from_millis(i * 20 + 30 + wobble),
                &SimRtp {
                    kind: RtpKind::Probe { probe_seq: i },
                    path: P1,
                    transport_seq: i,
                    sent_at: SimTime::from_millis(i * 20),
                },
            );
        }
        let rtcp = r.poll_rtcp(SimTime::from_secs(2), &BTreeMap::new());
        let rr1 = rtcp
            .iter()
            .find_map(|(p, pkt)| match pkt {
                RtcpPacket::ReceiverReport(rr) if *p == P1 => Some(rr),
                _ => None,
            })
            .expect("rr");
        // ~20 ms alternating wobble → jitter near 20 ms = 1800 ticks.
        assert!(
            rr1.blocks[0].jitter > 900,
            "wobbly transit: {}",
            rr1.blocks[0].jitter
        );
    }

    #[test]
    fn rr_carries_rtt_echo() {
        let mut r = receiver();
        r.on_rtp(
            SimTime::from_millis(5),
            &rtp(0, RtpKind::Probe { probe_seq: 0 }),
        );
        let mut sr_info = BTreeMap::new();
        sr_info.insert(P0, (1_000u64, SimTime::from_millis(1_040)));
        let rtcp = r.poll_rtcp(SimTime::from_millis(1_100), &sr_info);
        let rr = rtcp
            .iter()
            .find_map(|(p, pkt)| match pkt {
                RtcpPacket::ReceiverReport(rr) if *p == P0 => Some(rr),
                _ => None,
            })
            .expect("rr");
        assert_eq!(rr.blocks[0].last_sr, 1_000);
        assert_eq!(rr.blocks[0].delay_since_last_sr, 60);
    }
}
