//! The committed drive-fixture library.
//!
//! Three synthetic multi-path drive captures (JSONL, embedded at compile
//! time from `tests/tests/fixtures/drives/`) model the cellular dynamics
//! the paper's real T-Mobile/Verizon drives exhibit: staggered coverage
//! gaps, an inter-carrier handover, and a blackout-plus-flap segment —
//! over 4, 6, and 8 path topologies respectively. [`DriveFixture`] is
//! `Copy + Eq + Hash` so benchmark cells replaying a fixture stay
//! fingerprintable and memoizable.

use crate::scenarios::ScenarioConfig;

/// One committed drive fixture, selectable by value (hashable — used in
/// bench cell fingerprints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DriveFixture {
    /// 4 paths, 60 s: WiFi + two cellular carriers with staggered coverage
    /// gaps + GEO satellite.
    CoverageGaps,
    /// 6 paths, 60 s: carrier A fades out while carrier B fades in (OWD
    /// spikes at the crossover), plus WiFi/LEO/background cellular.
    Handover,
    /// 8 paths, 60 s: one hard blackout, one flapping path, and a mixed
    /// WiFi/cellular/satellite backdrop.
    BlackoutFlap,
}

impl DriveFixture {
    /// Every committed fixture.
    pub const ALL: [DriveFixture; 3] = [
        DriveFixture::CoverageGaps,
        DriveFixture::Handover,
        DriveFixture::BlackoutFlap,
    ];

    /// Short stable identifier used in scenario names and cache keys.
    pub fn id(&self) -> &'static str {
        match self {
            DriveFixture::CoverageGaps => "coverage-gaps",
            DriveFixture::Handover => "handover",
            DriveFixture::BlackoutFlap => "blackout-flap",
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            DriveFixture::CoverageGaps => "staggered coverage gaps",
            DriveFixture::Handover => "inter-carrier handover",
            DriveFixture::BlackoutFlap => "blackout + flap",
        }
    }

    /// Paths in the fixture's topology.
    pub fn path_count(&self) -> usize {
        match self {
            DriveFixture::CoverageGaps => 4,
            DriveFixture::Handover => 6,
            DriveFixture::BlackoutFlap => 8,
        }
    }

    /// The fixture's raw JSONL, embedded at compile time. The same bytes
    /// live on disk for file-driven workflows
    /// (`tests/tests/fixtures/drives/<name>.jsonl`).
    pub fn jsonl(&self) -> &'static str {
        match self {
            DriveFixture::CoverageGaps => {
                include_str!("../../../tests/tests/fixtures/drives/coverage_gaps.jsonl")
            }
            DriveFixture::Handover => {
                include_str!("../../../tests/tests/fixtures/drives/handover.jsonl")
            }
            DriveFixture::BlackoutFlap => {
                include_str!("../../../tests/tests/fixtures/drives/blackout_flap.jsonl")
            }
        }
    }

    /// Builds the replay scenario for this fixture.
    pub fn scenario(&self) -> ScenarioConfig {
        let mut scenario = ScenarioConfig::from_drive_str(self.jsonl())
            .expect("committed drive fixtures parse");
        scenario.name = format!("drive-{}", self.id());
        scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use converge_net::SimTime;

    #[test]
    fn every_fixture_parses_to_its_topology() {
        for fixture in DriveFixture::ALL {
            let scenario = fixture.scenario();
            assert_eq!(
                scenario.paths.len(),
                fixture.path_count(),
                "{}",
                fixture.id()
            );
            assert_eq!(scenario.name, format!("drive-{}", fixture.id()));
            for (i, path) in scenario.paths.iter().enumerate() {
                let drive = path.drive.as_ref().unwrap_or_else(|| {
                    panic!("{} path {i} must carry a drive", fixture.id())
                });
                // 60 s captures: the final hold segment starts at 60 s.
                assert_eq!(drive.end(), SimTime::from_secs(60), "{}", fixture.id());
            }
        }
    }

    #[test]
    fn fixtures_model_their_named_dynamics() {
        // Coverage gaps: WiFi (path 0) dies mid-drive and recovers.
        let gaps = DriveFixture::CoverageGaps.scenario();
        let wifi = gaps.paths[0].drive.as_ref().unwrap();
        assert!(wifi.rate_at(SimTime::from_secs(30)) < 1_000_000);
        assert!(wifi.rate_at(SimTime::from_secs(50)) > 20_000_000);

        // Handover: carrier A (path 0) hands off to carrier B (path 1).
        let handover = DriveFixture::Handover.scenario();
        let a = handover.paths[0].drive.as_ref().unwrap();
        let b = handover.paths[1].drive.as_ref().unwrap();
        assert!(a.rate_at(SimTime::from_secs(5)) > 10 * b.rate_at(SimTime::from_secs(5)));
        assert!(b.rate_at(SimTime::from_secs(55)) > 10 * a.rate_at(SimTime::from_secs(55)));

        // Blackout-flap: path 2 goes fully dark at 15-23 s, path 5 flaps.
        let bf = DriveFixture::BlackoutFlap.scenario();
        let dark = bf.paths[2].drive.as_ref().unwrap();
        assert_eq!(dark.rate_at(SimTime::from_secs(18)), 0);
        assert!(dark.rate_at(SimTime::from_secs(30)) > 10_000_000);
        let flap = bf.paths[5].drive.as_ref().unwrap();
        assert_eq!(flap.rate_at(SimTime::from_secs(25)), 0);
        assert!(flap.rate_at(SimTime::from_secs(29)) > 5_000_000);
    }
}
