//! Send-side pacer.
//!
//! WebRTC never bursts a whole frame onto the wire: the paced sender
//! drains packets at a multiple of the target bitrate so a large keyframe
//! spreads over several milliseconds instead of slamming the bottleneck
//! queue. The multipath system inherits this; each path gets its own
//! pacing budget so one path's backlog cannot stall another's.

use std::collections::VecDeque;

use converge_net::{PathId, SimDuration, SimTime};

use crate::sender::OutboundPacket;

/// Pacing configuration.
#[derive(Debug, Clone, Copy)]
pub struct PacerConfig {
    /// Multiplier over the path's target rate (WebRTC uses 2.5).
    pub pacing_factor: f64,
    /// Floor for the pacing rate so a starved path still drains.
    pub min_rate_bps: f64,
    /// Cap on how long a packet may wait before being force-flushed
    /// (matches WebRTC's queue-time limit).
    pub max_queue_delay: SimDuration,
}

impl Default for PacerConfig {
    fn default() -> Self {
        PacerConfig {
            pacing_factor: 2.5,
            min_rate_bps: 300_000.0,
            max_queue_delay: SimDuration::from_millis(250),
        }
    }
}

struct Queued {
    packet: OutboundPacket,
    enqueued_at: SimTime,
}

#[derive(Default)]
struct PathQueue {
    queue: VecDeque<Queued>,
    /// Virtual time until which the path's budget is spent.
    busy_until: SimTime,
    rate_bps: f64,
}

/// Per-path token-bucket pacer.
pub struct Pacer {
    config: PacerConfig,
    /// Per-path queues, sorted by `PathId`. A session paces a handful of
    /// paths at most, and the event loop hits this on every packet; a
    /// sorted vec beats a tree map at that size while keeping the same
    /// key-ordered iteration (release order across paths is part of the
    /// traced behaviour).
    paths: Vec<(PathId, PathQueue)>,
    /// Running total of queued packets so `len`/`is_empty` are O(1) in the
    /// event loop's idle check.
    queued: usize,
}

impl Pacer {
    /// Creates a pacer.
    pub fn new(config: PacerConfig) -> Self {
        Pacer {
            config,
            paths: Vec::new(),
            queued: 0,
        }
    }

    /// Returns the queue for `path`, inserting an empty one (sorted) if new.
    fn path_queue(&mut self, path: PathId) -> &mut PathQueue {
        let idx = match self.paths.iter().position(|(p, _)| *p == path) {
            Some(idx) => idx,
            None => {
                let at = self.paths.partition_point(|(p, _)| *p < path);
                self.paths.insert(at, (path, PathQueue::default()));
                at
            }
        };
        &mut self.paths[idx].1
    }

    /// Updates a path's pacing rate (from GCC).
    pub fn set_rate(&mut self, path: PathId, target_bps: f64) {
        let factor = self.config.pacing_factor;
        let floor = self.config.min_rate_bps;
        let q = self.path_queue(path);
        q.rate_bps = (target_bps * factor).max(floor);
    }

    /// Queues packets for paced transmission.
    pub fn enqueue(&mut self, now: SimTime, packets: Vec<OutboundPacket>) {
        for packet in packets {
            self.queued += 1;
            let path = packet.path;
            self.path_queue(path).queue.push_back(Queued {
                packet,
                enqueued_at: now,
            });
        }
    }

    /// Total packets waiting.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// Whether nothing waits.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// The earliest instant at which another packet becomes sendable.
    pub fn next_release(&self) -> Option<SimTime> {
        if self.queued == 0 {
            return None;
        }
        self.paths
            .iter()
            .filter(|(_, q)| !q.queue.is_empty())
            .map(|(_, q)| q.busy_until)
            .min()
    }

    /// Releases every packet whose pacing budget allows transmission at
    /// `now`, in per-path FIFO order.
    pub fn poll(&mut self, now: SimTime) -> Vec<OutboundPacket> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// Appends every releasable packet to `out`, in per-path FIFO order.
    /// Allocation-free once `out` has warmed up; the event loop clears and
    /// reuses one buffer across iterations.
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<OutboundPacket>) {
        if self.queued == 0 {
            return;
        }
        for (_, q) in self.paths.iter_mut() {
            while let Some(front) = q.queue.front() {
                let overdue =
                    now.saturating_since(front.enqueued_at) >= self.config.max_queue_delay;
                if q.busy_until > now && !overdue {
                    break;
                }
                let item = q.queue.pop_front().expect("front exists");
                self.queued -= 1;
                let bytes = item.packet.payload.wire_size();
                let rate = q.rate_bps.max(self.config.min_rate_bps);
                let serialize = SimDuration::from_micros((bytes as f64 * 8.0 / rate * 1e6) as u64);
                // The budget clock advances from its own virtual position
                // (or the packet's enqueue time if the path went idle), not
                // from `now`: a late poll must release every packet whose
                // slot already passed.
                q.busy_until = q.busy_until.max(item.enqueued_at) + serialize;
                out.push(item.packet);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{NetPayload, RtpKind};
    use converge_core::PacketClass;
    use converge_sim_test_util::*;

    // Local helper module: building OutboundPacket requires sim types.
    mod converge_sim_test_util {
        use super::*;
        use converge_video::{FrameType, PacketKind, StreamId, VideoPacket};

        pub fn pkt(path: PathId, size: usize) -> OutboundPacket {
            OutboundPacket {
                payload: NetPayload::Rtp(crate::payload::SimRtp {
                    kind: RtpKind::Media(VideoPacket {
                        stream: StreamId(0),
                        sequence: 0,
                        frame_id: 0,
                        gop_id: 0,
                        frame_type: FrameType::Delta,
                        kind: PacketKind::Media { index: 0, count: 1 },
                        size: size.saturating_sub(24),
                        capture_time: SimTime::ZERO,
                    }),
                    path,
                    transport_seq: 0,
                    sent_at: SimTime::ZERO,
                }),
                path,
                class: PacketClass::DeltaMedia,
            }
        }
    }

    const P0: PathId = PathId(0);
    const P1: PathId = PathId(1);

    #[test]
    fn spreads_burst_over_time() {
        let mut p = Pacer::new(PacerConfig::default());
        // 1 Mbps target → 2.5 Mbps pacing; 10 × 1250 B = 100 kbit → 40 ms.
        p.set_rate(P0, 1_000_000.0);
        p.enqueue(SimTime::ZERO, (0..10).map(|_| pkt(P0, 1250)).collect());
        let first = p.poll(SimTime::ZERO);
        assert_eq!(first.len(), 1, "only the first packet goes immediately");
        assert!(!p.is_empty());
        // After 4 ms (one packet's pacing slot) another releases.
        let next = p.next_release().expect("pending");
        assert_eq!(next.as_millis(), 4);
        assert_eq!(p.poll(next).len(), 1);
        // All released within ~40 ms.
        assert_eq!(p.poll(SimTime::from_millis(41)).len(), 8);
        assert!(p.is_empty());
    }

    #[test]
    fn paths_paced_independently() {
        let mut p = Pacer::new(PacerConfig::default());
        p.set_rate(P0, 10_000_000.0);
        p.set_rate(P1, 1_000_000.0);
        p.enqueue(
            SimTime::ZERO,
            vec![pkt(P0, 1250), pkt(P0, 1250), pkt(P1, 1250), pkt(P1, 1250)],
        );
        let now = p.poll(SimTime::ZERO);
        // One from each path immediately.
        assert_eq!(now.len(), 2);
        // Fast path's second packet releases at 0.4 ms, slow at 4 ms.
        let t = SimTime::from_micros(500);
        let released = p.poll(t);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].path, P0);
    }

    #[test]
    fn overdue_packets_force_flush() {
        let mut p = Pacer::new(PacerConfig::default());
        p.set_rate(P0, 300_000.0); // very slow pacing
        p.enqueue(SimTime::ZERO, (0..50).map(|_| pkt(P0, 1250)).collect());
        // After the max queue delay everything still queued is flushed.
        let released = p.poll(SimTime::from_millis(260));
        assert_eq!(released.len(), 50, "force flush on queue-time limit");
    }

    #[test]
    fn empty_pacer_reports_nothing() {
        let mut p = Pacer::new(PacerConfig::default());
        assert!(p.is_empty());
        assert_eq!(p.next_release(), None);
        assert!(p.poll(SimTime::from_secs(1)).is_empty());
    }

    #[test]
    fn unknown_path_uses_min_rate() {
        let mut p = Pacer::new(PacerConfig::default());
        // No set_rate call: pacing falls back to the floor, not zero.
        p.enqueue(SimTime::ZERO, vec![pkt(P0, 1250), pkt(P0, 1250)]);
        assert_eq!(p.poll(SimTime::ZERO).len(), 1);
        assert!(p.next_release().is_some());
    }
}
