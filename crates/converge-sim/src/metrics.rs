//! QoE metrics collection: everything the paper's evaluation reports.

use std::collections::BTreeMap;

use converge_net::{PathId, SimDuration, SimTime};
use converge_video::{effective_psnr, qp_for_bitrate, StreamId, VideoFormat};

/// Per-second time-series bin for the figure-style plots (Figs. 9/11/16).
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct SecondBin {
    /// Media payload bits delivered this second.
    pub media_bits: u64,
    /// Frames decoded this second.
    pub frames_decoded: u32,
    /// Sum and count of per-frame E2E latencies (for the mean).
    pub e2e_sum_us: u64,
    /// Number of E2E samples.
    pub e2e_count: u32,
    /// Sum of interframe delays observed.
    pub ifd_sum_us: u64,
    /// Number of IFD samples.
    pub ifd_count: u32,
    /// Sum of frame construction delays observed.
    pub fcd_sum_us: u64,
    /// Number of FCD samples.
    pub fcd_count: u32,
    /// Frames dropped this second.
    pub frames_dropped: u32,
    /// Sum of encoded frame heights this second (resolution telemetry).
    pub height_sum: u64,
    /// Number of encoded frames this second.
    pub encoded_count: u32,
}

impl SecondBin {
    /// Delivered media throughput this second, bits per second.
    pub fn throughput_bps(&self) -> f64 {
        self.media_bits as f64
    }

    /// Mean E2E latency this second, milliseconds (None if no frames).
    pub fn e2e_ms(&self) -> Option<f64> {
        (self.e2e_count > 0).then(|| self.e2e_sum_us as f64 / self.e2e_count as f64 / 1_000.0)
    }

    /// Mean IFD this second, milliseconds.
    pub fn ifd_ms(&self) -> Option<f64> {
        (self.ifd_count > 0).then(|| self.ifd_sum_us as f64 / self.ifd_count as f64 / 1_000.0)
    }

    /// Mean FCD this second, milliseconds.
    pub fn fcd_ms(&self) -> Option<f64> {
        (self.fcd_count > 0).then(|| self.fcd_sum_us as f64 / self.fcd_count as f64 / 1_000.0)
    }

    /// Mean encoded height this second (720 = full resolution).
    pub fn encoded_height(&self) -> Option<f64> {
        (self.encoded_count > 0).then(|| self.height_sum as f64 / self.encoded_count as f64)
    }
}

/// Per-path counters.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct PathCounters {
    /// RTP packets sent on the path.
    pub packets_sent: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// RTP packets that arrived.
    pub packets_received: u64,
    /// Packets lost in the network.
    pub packets_lost: u64,
}

/// Per-path deltas accumulated during one event-loop iteration. Packet
/// events land here as plain integer adds; the maps and time-series bins
/// are only touched when the batch is folded in (once per iteration).
#[derive(Debug, Default, Clone, Copy)]
struct PendingPath {
    packets_sent: u64,
    bytes_sent: u64,
    fec_sent: u64,
    media_sent: u64,
    packets_received: u64,
    packets_lost: u64,
    media_bits: u64,
}

/// The per-tick batch. All packet events of one event-loop iteration
/// share a timestamp, so one bin index covers the whole batch; an event
/// with a new timestamp forces a flush first, which keeps the collector
/// correct even if [`MetricsCollector::flush_tick`] is never called.
#[derive(Debug, Default)]
struct TickBatch {
    at: Option<SimTime>,
    /// Linear map: a tick touches at most a handful of paths.
    paths: Vec<(PathId, PendingPath)>,
}

impl TickBatch {
    fn path_mut(&mut self, path: PathId) -> &mut PendingPath {
        if let Some(i) = self.paths.iter().position(|(p, _)| *p == path) {
            return &mut self.paths[i].1;
        }
        self.paths.push((path, PendingPath::default()));
        &mut self.paths.last_mut().expect("just pushed").1
    }
}

/// The collector the simulation feeds while running.
#[derive(Debug)]
pub struct MetricsCollector {
    start: SimTime,
    duration: SimDuration,
    format: VideoFormat,
    max_encoding_rate_bps: u64,
    streams: u8,

    bins: Vec<SecondBin>,
    paths: BTreeMap<PathId, PathCounters>,
    /// Bytes sent per second per path (for per-path rate plots).
    path_bins: BTreeMap<PathId, Vec<u64>>,
    /// Packet counters staged for the current event-loop iteration.
    pending: TickBatch,

    frames_encoded: u64,
    height_sum: u64,
    frames_decoded: u64,
    frames_dropped: u64,
    keyframe_requests: u64,
    nacks_sent: u64,
    retransmissions: u64,

    media_packets_sent: u64,
    fec_packets_sent: u64,
    fec_packets_received: u64,
    fec_packets_used: u64,

    e2e_us: Vec<u64>,
    qp_sum: u64,
    qp_count: u64,

    /// Last decode instant per stream, for freeze detection.
    last_decode: BTreeMap<StreamId, SimTime>,
    freeze_total: SimDuration,
    freeze_events: u64,
    /// Gap beyond which the video is considered frozen.
    freeze_threshold: SimDuration,
    /// Per-second decoded frame counts for min-FPS style stats.
    expected_frame_interval: SimDuration,
}

impl MetricsCollector {
    /// Creates a collector for a call of `duration` with `streams` cameras.
    pub fn new(
        duration: SimDuration,
        format: VideoFormat,
        max_encoding_rate_bps: u64,
        streams: u8,
    ) -> Self {
        let secs = (duration.as_secs_f64().ceil() as usize).max(1);
        MetricsCollector {
            start: SimTime::ZERO,
            duration,
            format,
            max_encoding_rate_bps,
            streams,
            bins: vec![SecondBin::default(); secs],
            paths: BTreeMap::new(),
            path_bins: BTreeMap::new(),
            pending: TickBatch::default(),
            frames_encoded: 0,
            height_sum: 0,
            frames_decoded: 0,
            frames_dropped: 0,
            keyframe_requests: 0,
            nacks_sent: 0,
            retransmissions: 0,
            media_packets_sent: 0,
            fec_packets_sent: 0,
            fec_packets_received: 0,
            fec_packets_used: 0,
            e2e_us: Vec::new(),
            qp_sum: 0,
            qp_count: 0,
            last_decode: BTreeMap::new(),
            freeze_total: SimDuration::ZERO,
            freeze_events: 0,
            freeze_threshold: SimDuration::from_millis(200),
            expected_frame_interval: SimDuration::from_micros(1_000_000 / format.fps.max(1) as u64),
        }
    }

    fn bin_mut(&mut self, at: SimTime) -> &mut SecondBin {
        let idx = (at.saturating_since(self.start).as_secs_f64() as usize)
            .min(self.bins.len().saturating_sub(1));
        &mut self.bins[idx]
    }

    /// Records an encoded frame at `at`.
    pub fn on_frame_encoded(&mut self, at: SimTime, qp: u8, height: u32) {
        self.frames_encoded += 1;
        self.height_sum += height as u64;
        self.qp_sum += qp as u64;
        self.qp_count += 1;
        let bin = self.bin_mut(at);
        bin.height_sum += height as u64;
        bin.encoded_count += 1;
    }

    /// Stages `at` as the pending batch's timestamp, flushing first if a
    /// previous iteration's events are still staged.
    fn stage(&mut self, at: SimTime) {
        if self.pending.at != Some(at) {
            self.flush_tick();
            self.pending.at = Some(at);
        }
    }

    /// Records a packet sent on a path at `at`.
    pub fn on_packet_sent(
        &mut self,
        at: SimTime,
        path: PathId,
        bytes: usize,
        is_fec: bool,
        is_media: bool,
    ) {
        self.stage(at);
        let p = self.pending.path_mut(path);
        p.packets_sent += 1;
        p.bytes_sent += bytes as u64;
        if is_fec {
            p.fec_sent += 1;
        }
        if is_media {
            p.media_sent += 1;
        }
    }

    /// Records a packet lost in the network.
    pub fn on_packet_lost(&mut self, path: PathId) {
        self.pending.path_mut(path).packets_lost += 1;
    }

    /// Records a packet arrival; `media_payload` is the media bytes counted
    /// toward delivered throughput (0 for FEC/probe/control).
    pub fn on_packet_received(&mut self, at: SimTime, path: PathId, media_payload: usize) {
        self.stage(at);
        let p = self.pending.path_mut(path);
        p.packets_received += 1;
        p.media_bits += media_payload as u64 * 8;
    }

    /// Folds the staged per-tick packet counters into the aggregate maps
    /// and time-series bins. The session calls this once per event-loop
    /// iteration; it also runs automatically when an event arrives with a
    /// new timestamp and at the start of [`MetricsCollector::finish`].
    pub fn flush_tick(&mut self) {
        if self.pending.paths.is_empty() {
            self.pending.at = None;
            return;
        }
        // Move the staged entries out so the batch Vec (and its capacity)
        // can be handed back after the fold — steady state allocates
        // nothing.
        let mut staged = std::mem::take(&mut self.pending.paths);
        let at = self.pending.at.take();
        let n_bins = self.bins.len();
        let idx = at.map(|t| {
            (t.saturating_since(self.start).as_secs_f64() as usize).min(n_bins.saturating_sub(1))
        });
        let mut media_bits = 0u64;
        for &(path, p) in &staged {
            let c = self.paths.entry(path).or_default();
            c.packets_sent += p.packets_sent;
            c.bytes_sent += p.bytes_sent;
            c.packets_received += p.packets_received;
            c.packets_lost += p.packets_lost;
            self.fec_packets_sent += p.fec_sent;
            self.media_packets_sent += p.media_sent;
            media_bits += p.media_bits;
            if p.bytes_sent > 0 {
                if let Some(idx) = idx {
                    let series = self.path_bins.entry(path).or_insert_with(|| vec![0; n_bins]);
                    series[idx] += p.bytes_sent;
                }
            }
        }
        if media_bits > 0 {
            if let Some(idx) = idx {
                self.bins[idx].media_bits += media_bits;
            }
        }
        staged.clear();
        self.pending.paths = staged;
    }

    /// Records a received FEC packet.
    pub fn on_fec_received(&mut self) {
        self.fec_packets_received += 1;
    }

    /// Records an FEC packet actually used to recover a loss.
    pub fn on_fec_used(&mut self) {
        self.fec_packets_used += 1;
    }

    /// Records a frame decoded at `at` that was captured at `captured`.
    /// Returns the decode gap when this frame ended a freeze (the gap
    /// since the stream's previous decode exceeded the threshold).
    pub fn on_frame_decoded(
        &mut self,
        stream: StreamId,
        at: SimTime,
        e2e: SimDuration,
    ) -> Option<SimDuration> {
        self.frames_decoded += 1;
        self.e2e_us.push(e2e.as_micros());
        {
            let bin = self.bin_mut(at);
            bin.frames_decoded += 1;
            bin.e2e_sum_us += e2e.as_micros();
            bin.e2e_count += 1;
        }
        // Freeze detection: a decode gap beyond the threshold is a stall.
        if let Some(prev) = self.last_decode.insert(stream, at) {
            let gap = at.saturating_since(prev);
            if gap > self.freeze_threshold {
                self.freeze_total += gap - self.expected_frame_interval;
                self.freeze_events += 1;
                return Some(gap);
            }
        }
        None
    }

    /// Records a dropped (never decoded) frame.
    pub fn on_frame_dropped(&mut self, at: SimTime) {
        self.frames_dropped += 1;
        self.bin_mut(at).frames_dropped += 1;
    }

    /// Records a keyframe request (PLI).
    pub fn on_keyframe_request(&mut self) {
        self.keyframe_requests += 1;
    }

    /// Records NACKed sequence numbers.
    pub fn on_nack_sent(&mut self, count: usize) {
        self.nacks_sent += count as u64;
    }

    /// Records a retransmission.
    pub fn on_retransmission(&mut self) {
        self.retransmissions += 1;
    }

    /// Records an IFD observation.
    pub fn on_ifd(&mut self, at: SimTime, ifd: SimDuration) {
        let bin = self.bin_mut(at);
        bin.ifd_sum_us += ifd.as_micros();
        bin.ifd_count += 1;
    }

    /// Records an FCD observation.
    pub fn on_fcd(&mut self, at: SimTime, fcd: SimDuration) {
        let bin = self.bin_mut(at);
        bin.fcd_sum_us += fcd.as_micros();
        bin.fcd_count += 1;
    }

    /// Produces the final report.
    pub fn finish(mut self) -> CallReport {
        self.flush_tick();
        let secs = self.duration.as_secs_f64();
        let media_bits: u64 = self.bins.iter().map(|b| b.media_bits).sum();
        let throughput_bps = media_bits as f64 / secs;
        let fps = self.frames_decoded as f64 / secs;
        let mut e2e = self.e2e_us.clone();
        e2e.sort_unstable();
        let pct = |p: f64| -> f64 {
            if e2e.is_empty() {
                return 0.0;
            }
            let idx = ((e2e.len() - 1) as f64 * p).round() as usize;
            e2e[idx] as f64 / 1_000.0
        };
        let e2e_mean_ms = if e2e.is_empty() {
            0.0
        } else {
            e2e.iter().sum::<u64>() as f64 / e2e.len() as f64 / 1_000.0
        };
        let avg_qp = if self.qp_count > 0 {
            self.qp_sum as f64 / self.qp_count as f64
        } else {
            qp_for_bitrate(self.format, 0.0) as f64
        };
        let freeze_fraction = (self.freeze_total.as_secs_f64() / secs).clamp(0.0, 1.0);
        // PSNR from delivered per-stream rate and freeze fraction.
        let per_stream_rate = throughput_bps / self.streams.max(1) as f64;
        let psnr_db = effective_psnr(self.format, per_stream_rate, freeze_fraction);

        CallReport {
            duration_s: secs,
            streams: self.streams,
            max_encoding_rate_bps: self.max_encoding_rate_bps,
            throughput_bps,
            fps,
            e2e_mean_ms,
            e2e_p50_ms: pct(0.50),
            e2e_p95_ms: pct(0.95),
            e2e_samples_ms: e2e.iter().map(|&us| us as f64 / 1_000.0).collect(),
            freeze_total_ms: self.freeze_total.as_micros() as f64 / 1_000.0,
            freeze_events: self.freeze_events,
            frames_encoded: self.frames_encoded,
            avg_encoded_height: if self.frames_encoded > 0 {
                self.height_sum as f64 / self.frames_encoded as f64
            } else {
                0.0
            },
            frames_decoded: self.frames_decoded,
            frames_dropped: self.frames_dropped,
            keyframe_requests: self.keyframe_requests,
            nacks_sent: self.nacks_sent,
            retransmissions: self.retransmissions,
            media_packets_sent: self.media_packets_sent,
            fec_packets_sent: self.fec_packets_sent,
            fec_packets_received: self.fec_packets_received,
            fec_packets_used: self.fec_packets_used,
            avg_qp,
            psnr_db,
            paths: self.paths,
            path_series: self.path_bins,
            bins: self.bins,
        }
    }
}

/// The final report of one simulated call.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CallReport {
    /// Call duration in seconds.
    pub duration_s: f64,
    /// Number of camera streams.
    pub streams: u8,
    /// Application encoding cap, bps.
    pub max_encoding_rate_bps: u64,
    /// Delivered media throughput, bps (all streams).
    pub throughput_bps: f64,
    /// Decoded frames per second (all streams; divide by `streams` for
    /// per-camera FPS).
    pub fps: f64,
    /// Mean per-frame end-to-end latency, ms.
    pub e2e_mean_ms: f64,
    /// Median E2E, ms.
    pub e2e_p50_ms: f64,
    /// 95th-percentile E2E, ms.
    pub e2e_p95_ms: f64,
    /// Every per-frame E2E sample (ms), for CDFs (Fig. 14c).
    pub e2e_samples_ms: Vec<f64>,
    /// Total stall time, ms.
    pub freeze_total_ms: f64,
    /// Number of distinct stalls.
    pub freeze_events: u64,
    /// Frames the encoder produced.
    pub frames_encoded: u64,
    /// Mean encoded frame height (720 = never downscaled; lower values
    /// show the resolution adaptation the paper observes in Fig. 9b).
    pub avg_encoded_height: f64,
    /// Frames the decoder displayed.
    pub frames_decoded: u64,
    /// Frames dropped at the receiver.
    pub frames_dropped: u64,
    /// Keyframe requests (PLIs).
    pub keyframe_requests: u64,
    /// NACKed sequence numbers.
    pub nacks_sent: u64,
    /// Retransmitted packets.
    pub retransmissions: u64,
    /// Media packets sent.
    pub media_packets_sent: u64,
    /// FEC packets generated.
    pub fec_packets_sent: u64,
    /// FEC packets that reached the receiver.
    pub fec_packets_received: u64,
    /// FEC packets used for recovery.
    pub fec_packets_used: u64,
    /// Mean encoder QP (image quality; lower is better).
    pub avg_qp: f64,
    /// Effective PSNR in dB from the R–D model.
    pub psnr_db: f64,
    /// Per-path counters.
    pub paths: BTreeMap<PathId, PathCounters>,
    /// Bytes sent per second per path (per-path rate series, e.g. the
    /// paper's Fig. 11 share-shift visual).
    pub path_series: BTreeMap<PathId, Vec<u64>>,
    /// Per-second time series.
    pub bins: Vec<SecondBin>,
}

impl CallReport {
    /// Per-camera FPS.
    pub fn fps_per_stream(&self) -> f64 {
        self.fps / self.streams.max(1) as f64
    }

    /// Average duration of one freeze event, ms (the paper's "average
    /// freeze duration" of Fig. 3b); zero when the call never froze.
    pub fn avg_freeze_ms(&self) -> f64 {
        if self.freeze_events == 0 {
            return 0.0;
        }
        self.freeze_total_ms / self.freeze_events as f64
    }

    /// Fraction of the call spent frozen, percent; zero for a zero-length
    /// call.
    pub fn freeze_ratio_pct(&self) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        self.freeze_total_ms / (self.duration_s * 1_000.0) * 100.0
    }

    /// FEC overhead: extra FEC packets relative to media packets, percent.
    pub fn fec_overhead_pct(&self) -> f64 {
        if self.media_packets_sent == 0 {
            return 0.0;
        }
        self.fec_packets_sent as f64 / self.media_packets_sent as f64 * 100.0
    }

    /// FEC utilization: received FEC packets actually used, percent.
    pub fn fec_utilization_pct(&self) -> f64 {
        if self.fec_packets_received == 0 {
            return 0.0;
        }
        self.fec_packets_used as f64 / self.fec_packets_received as f64 * 100.0
    }

    /// Normalized throughput: delivered / (streams × max encoding rate),
    /// matching the paper's normalization in §6.
    pub fn normalized_throughput(&self) -> f64 {
        let denom = self.max_encoding_rate_bps as f64 * self.streams.max(1) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        self.throughput_bps / denom
    }

    /// Normalized FPS against the 24-FPS good-QoE floor.
    pub fn normalized_fps(&self) -> f64 {
        self.fps_per_stream() / 24.0
    }

    /// Normalized QP against 60 (the lowest quality).
    pub fn normalized_qp(&self) -> f64 {
        self.avg_qp / 60.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector() -> MetricsCollector {
        MetricsCollector::new(
            SimDuration::from_secs(10),
            VideoFormat::HD720,
            10_000_000,
            1,
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn throughput_counts_media_bytes() {
        let mut m = collector();
        m.on_packet_received(t(100), PathId(0), 1_250_000); // 10 Mbit
        let r = m.finish();
        assert!((r.throughput_bps - 1_000_000.0).abs() < 1.0); // over 10 s
    }

    #[test]
    fn fps_counts_decoded_frames() {
        let mut m = collector();
        for i in 0..300u64 {
            m.on_frame_decoded(StreamId(0), t(i * 33), d(100));
        }
        let r = m.finish();
        assert!((r.fps - 30.0).abs() < 0.1);
        assert_eq!(r.frames_decoded, 300);
    }

    #[test]
    fn freeze_detected_on_decode_gap() {
        let mut m = collector();
        m.on_frame_decoded(StreamId(0), t(0), d(100));
        m.on_frame_decoded(StreamId(0), t(33), d(100));
        // 1-second gap → freeze.
        m.on_frame_decoded(StreamId(0), t(1033), d(100));
        let r = m.finish();
        assert_eq!(r.freeze_events, 1);
        assert!((r.freeze_total_ms - (1_000.0 - 33.333)).abs() < 1.0);
    }

    #[test]
    fn no_freeze_on_steady_decode() {
        let mut m = collector();
        for i in 0..30u64 {
            m.on_frame_decoded(StreamId(0), t(i * 33), d(100));
        }
        assert_eq!(m.finish().freeze_events, 0);
    }

    #[test]
    fn freezes_tracked_per_stream() {
        let mut m = collector();
        // Stream 0 steady, stream 1 gapped: only one freeze.
        for i in 0..30u64 {
            m.on_frame_decoded(StreamId(0), t(i * 33), d(100));
        }
        m.on_frame_decoded(StreamId(1), t(0), d(100));
        m.on_frame_decoded(StreamId(1), t(900), d(100));
        assert_eq!(m.finish().freeze_events, 1);
    }

    #[test]
    fn e2e_percentiles() {
        let mut m = collector();
        for i in 1..=100u64 {
            m.on_frame_decoded(StreamId(0), t(i * 10), d(i));
        }
        let r = m.finish();
        assert!((r.e2e_p50_ms - 51.0).abs() <= 1.0, "{}", r.e2e_p50_ms);
        assert!((r.e2e_p95_ms - 95.0).abs() <= 1.0);
        assert!((r.e2e_mean_ms - 50.5).abs() <= 0.1);
    }

    #[test]
    fn fec_ratios() {
        let mut m = collector();
        for _ in 0..100 {
            m.on_packet_sent(t(0), PathId(0), 1200, false, true);
        }
        for _ in 0..10 {
            m.on_packet_sent(t(0), PathId(0), 1200, true, false);
        }
        for _ in 0..8 {
            m.on_fec_received();
        }
        for _ in 0..2 {
            m.on_fec_used();
        }
        let r = m.finish();
        assert!((r.fec_overhead_pct() - 10.0).abs() < 1e-9);
        assert!((r.fec_utilization_pct() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn normalization_rules() {
        let mut m = collector();
        m.on_packet_received(t(0), PathId(0), 12_500_000); // 100 Mbit / 10 s = 10 Mbps
        for i in 0..240u64 {
            m.on_frame_decoded(StreamId(0), t(i * 41), d(10));
        }
        let r = m.finish();
        assert!((r.normalized_throughput() - 1.0).abs() < 0.01);
        assert!((r.normalized_fps() - 1.0).abs() < 0.01);
    }

    #[test]
    fn bins_capture_time_series() {
        let mut m = collector();
        m.on_packet_received(t(500), PathId(0), 1000);
        m.on_packet_received(t(1500), PathId(0), 2000);
        m.on_ifd(t(1500), d(40));
        m.on_fcd(t(2500), d(15));
        let r = m.finish();
        assert_eq!(r.bins[0].media_bits, 8000);
        assert_eq!(r.bins[1].media_bits, 16000);
        assert_eq!(r.bins[1].ifd_ms(), Some(40.0));
        assert_eq!(r.bins[2].fcd_ms(), Some(15.0));
        assert_eq!(r.bins[0].ifd_ms(), None);
    }

    #[test]
    fn per_path_counters() {
        let mut m = collector();
        m.on_packet_sent(t(0), PathId(0), 100, false, true);
        m.on_packet_sent(t(0), PathId(1), 200, false, true);
        m.on_packet_lost(PathId(1));
        m.on_packet_received(t(0), PathId(0), 100);
        let r = m.finish();
        assert_eq!(r.paths[&PathId(0)].packets_sent, 1);
        assert_eq!(r.paths[&PathId(1)].packets_lost, 1);
        assert_eq!(r.paths[&PathId(0)].packets_received, 1);
    }

    #[test]
    fn late_events_clamp_to_last_bin() {
        let mut m = collector();
        // Event after nominal duration must not panic.
        m.on_packet_received(t(20_000), PathId(0), 42);
        let r = m.finish();
        assert_eq!(r.bins.last().unwrap().media_bits, 42 * 8);
    }
}
