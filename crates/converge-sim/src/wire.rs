//! Wire codec: typed simulation packets ⇄ real RTP bytes.
//!
//! The simulator exchanges typed [`SimRtp`] values for speed, but the wire
//! formats in `converge-rtp` are the actual protocol contract. This module
//! maps every simulated RTP packet onto real bytes — fixed header, the
//! multipath extension, and a compact payload header carrying the video
//! metadata the far end needs (the parts a real receiver would get from
//! the codec bitstream) — and back, so integration tests can prove the
//! whole exchange survives serialization.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use converge_net::{PathId, SimTime};
use converge_rtp::{MultipathExtension, ParseError, PayloadType, RtpPacket};
use converge_video::{FrameType, PacketKind, StreamId, VideoPacket};

use crate::payload::{RtpKind, SimRtp};

/// Serializes one simulated RTP packet to wire bytes.
pub fn encode_rtp(rtp: &SimRtp) -> Bytes {
    let (payload_type, marker, body, ssrc, seq16, timestamp) = match &rtp.kind {
        RtpKind::Media(p) => (
            PayloadType::Video,
            is_frame_end(p),
            video_payload(p),
            ssrc_for(p.stream),
            (p.sequence & 0xFFFF) as u16,
            rtp_timestamp(p.capture_time),
        ),
        RtpKind::Retransmission(p) => (
            PayloadType::Retransmission,
            is_frame_end(p),
            video_payload(p),
            ssrc_for(p.stream),
            (p.sequence & 0xFFFF) as u16,
            rtp_timestamp(p.capture_time),
        ),
        RtpKind::Fec {
            stream, protected, ..
        } => (
            PayloadType::Fec,
            false,
            fec_payload(protected),
            ssrc_for(*stream),
            0,
            0,
        ),
        RtpKind::Probe { probe_seq } => (
            PayloadType::Probe,
            false,
            probe_payload(*probe_seq),
            0xFFFF_FFFF,
            (*probe_seq & 0xFFFF) as u16,
            0,
        ),
    };
    RtpPacket {
        marker,
        payload_type,
        sequence: seq16,
        timestamp,
        ssrc,
        extension: Some(MultipathExtension {
            path_id: rtp.path.0,
            // Fig. 18: mp_sequence is the flow-level media sequence (for
            // reordering across paths); only mp_transport_sequence carries
            // the per-path transport-wide number GCC feedback keys on.
            mp_sequence: seq16,
            mp_transport_sequence: (rtp.transport_seq & 0xFFFF) as u16,
        }),
        payload: body,
    }
    .serialize()
}

/// Parses wire bytes back into a simulated RTP packet.
///
/// `sent_at` cannot travel on the wire (a real receiver learns send times
/// from transport feedback, not the packet); the caller supplies it.
pub fn decode_rtp(wire: Bytes, sent_at: SimTime) -> Result<SimRtp, ParseError> {
    let pkt = RtpPacket::parse(wire)?;
    let ext = pkt.extension.ok_or(ParseError::BadExtension)?;
    let mut body = pkt.payload.clone();
    let kind = match pkt.payload_type {
        PayloadType::Video => RtpKind::Media(parse_video_payload(&mut body)?),
        PayloadType::Retransmission => RtpKind::Retransmission(parse_video_payload(&mut body)?),
        PayloadType::Fec => {
            let (stream, protected) = parse_fec_payload(&mut body)?;
            RtpKind::Fec {
                stream,
                protected,
                origin_path: PathId(ext.path_id),
            }
        }
        PayloadType::Probe => {
            if body.len() < 8 {
                return Err(ParseError::Truncated);
            }
            RtpKind::Probe {
                probe_seq: body.get_u64(),
            }
        }
    };
    Ok(SimRtp {
        kind,
        path: PathId(ext.path_id),
        transport_seq: ext.mp_transport_sequence as u64,
        sent_at,
    })
}

fn ssrc_for(stream: StreamId) -> u32 {
    0x5100_0000 | stream.0 as u32
}

fn stream_for(ssrc: u32) -> StreamId {
    StreamId((ssrc & 0xFF) as u8)
}

fn rtp_timestamp(capture: SimTime) -> u32 {
    // 90 kHz video clock.
    ((capture.as_micros() as u128 * 9 / 100) & 0xFFFF_FFFF) as u32
}

fn is_frame_end(p: &VideoPacket) -> bool {
    matches!(p.kind, PacketKind::Media { index, count } if index + 1 == count)
}

/// 28-byte metadata header + payload padding to the packet's modeled size.
fn video_payload(p: &VideoPacket) -> Bytes {
    let mut b = BytesMut::with_capacity(28 + p.size.min(64));
    b.put_u64(p.sequence);
    b.put_u64(p.frame_id);
    b.put_u32(p.gop_id as u32);
    b.put_u8(match p.frame_type {
        FrameType::Key => 1,
        FrameType::Delta => 0,
    });
    let (kind_tag, index, count) = match p.kind {
        PacketKind::Media { index, count } => (0u8, index, count),
        PacketKind::Pps => (1, 0, 0),
        PacketKind::Sps => (2, 0, 0),
    };
    b.put_u8(kind_tag);
    b.put_u16(index);
    b.put_u16(count);
    b.put_u32(p.size as u32);
    b.put_u64(p.capture_time.as_micros());
    b.freeze()
}

fn parse_video_payload(body: &mut Bytes) -> Result<VideoPacket, ParseError> {
    if body.len() < 38 {
        return Err(ParseError::Truncated);
    }
    // The SSRC is not in the payload; the caller's stream mapping comes
    // from the RTP header. We re-derive it there; for simplicity the
    // payload header also implies stream 0 until remapped.
    let sequence = body.get_u64();
    let frame_id = body.get_u64();
    let gop_id = body.get_u32() as u64;
    let frame_type = if body.get_u8() == 1 {
        FrameType::Key
    } else {
        FrameType::Delta
    };
    let kind_tag = body.get_u8();
    let index = body.get_u16();
    let count = body.get_u16();
    let size = body.get_u32() as usize;
    let capture_time = SimTime::from_micros(body.get_u64());
    let kind = match kind_tag {
        0 => PacketKind::Media { index, count },
        1 => PacketKind::Pps,
        2 => PacketKind::Sps,
        _ => return Err(ParseError::BadExtension),
    };
    Ok(VideoPacket {
        stream: StreamId(0), // remapped from the RTP SSRC by decode_rtp
        sequence,
        frame_id,
        gop_id,
        frame_type,
        kind,
        size,
        capture_time,
    })
}

fn fec_payload(protected: &[VideoPacket]) -> Bytes {
    let mut b = BytesMut::new();
    b.put_u16(protected.len() as u16);
    for p in protected {
        b.put_slice(&video_payload(p));
    }
    b.freeze()
}

fn parse_fec_payload(body: &mut Bytes) -> Result<(StreamId, Vec<VideoPacket>), ParseError> {
    if body.len() < 2 {
        return Err(ParseError::Truncated);
    }
    let n = body.get_u16() as usize;
    let mut protected = Vec::with_capacity(n);
    for _ in 0..n {
        protected.push(parse_video_payload(body)?);
    }
    Ok((StreamId(0), protected))
}

fn probe_payload(probe_seq: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(8);
    b.put_u64(probe_seq);
    b.freeze()
}

/// Re-stamps the stream identity from the RTP header SSRC onto the decoded
/// video metadata (payload headers are stream-agnostic).
pub fn remap_stream(mut rtp: SimRtp, ssrc: u32) -> SimRtp {
    let stream = stream_for(ssrc);
    match &mut rtp.kind {
        RtpKind::Media(p) | RtpKind::Retransmission(p) => p.stream = stream,
        RtpKind::Fec {
            stream: s,
            protected,
            ..
        } => {
            *s = stream;
            for p in protected {
                p.stream = stream;
            }
        }
        RtpKind::Probe { .. } => {}
    }
    rtp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp(seq: u64, kind: PacketKind) -> VideoPacket {
        VideoPacket {
            stream: StreamId(0),
            sequence: seq,
            frame_id: seq / 10,
            gop_id: seq / 300,
            frame_type: if seq.is_multiple_of(300) {
                FrameType::Key
            } else {
                FrameType::Delta
            },
            kind,
            size: 1200,
            capture_time: SimTime::from_micros(seq * 33_333),
        }
    }

    fn roundtrip(rtp: SimRtp) {
        let wire = encode_rtp(&rtp);
        let back = decode_rtp(wire, rtp.sent_at).expect("decode");
        assert_eq!(back, rtp);
    }

    #[test]
    fn media_roundtrips() {
        roundtrip(SimRtp {
            kind: RtpKind::Media(vp(42, PacketKind::Media { index: 2, count: 7 })),
            path: PathId(1),
            transport_seq: 999,
            sent_at: SimTime::from_millis(123),
        });
    }

    #[test]
    fn control_packets_roundtrip() {
        for kind in [PacketKind::Pps, PacketKind::Sps] {
            roundtrip(SimRtp {
                kind: RtpKind::Media(vp(7, kind)),
                path: PathId(0),
                transport_seq: 1,
                sent_at: SimTime::ZERO,
            });
        }
    }

    #[test]
    fn retransmission_roundtrips() {
        roundtrip(SimRtp {
            kind: RtpKind::Retransmission(vp(300, PacketKind::Media { index: 0, count: 1 })),
            path: PathId(2),
            transport_seq: 12345,
            sent_at: SimTime::from_secs(9),
        });
    }

    #[test]
    fn fec_roundtrips() {
        roundtrip(SimRtp {
            kind: RtpKind::Fec {
                stream: StreamId(0),
                protected: vec![
                    vp(10, PacketKind::Media { index: 0, count: 3 }),
                    vp(11, PacketKind::Media { index: 1, count: 3 }),
                    vp(12, PacketKind::Media { index: 2, count: 3 }),
                ],
                origin_path: PathId(1),
            },
            path: PathId(1),
            transport_seq: 77,
            sent_at: SimTime::from_millis(5),
        });
    }

    #[test]
    fn probe_roundtrips() {
        roundtrip(SimRtp {
            kind: RtpKind::Probe {
                probe_seq: 0xDEAD_BEEF,
            },
            path: PathId(3),
            transport_seq: 2,
            sent_at: SimTime::from_millis(1),
        });
    }

    #[test]
    fn stream_remap_applies_to_all_members() {
        let rtp = SimRtp {
            kind: RtpKind::Fec {
                stream: StreamId(0),
                protected: vec![vp(1, PacketKind::Media { index: 0, count: 1 })],
                origin_path: PathId(0),
            },
            path: PathId(0),
            transport_seq: 0,
            sent_at: SimTime::ZERO,
        };
        let remapped = remap_stream(rtp, ssrc_for(StreamId(2)));
        if let RtpKind::Fec {
            stream, protected, ..
        } = &remapped.kind
        {
            assert_eq!(*stream, StreamId(2));
            assert!(protected.iter().all(|p| p.stream == StreamId(2)));
        } else {
            panic!("not fec");
        }
    }

    #[test]
    fn mp_sequence_carries_flow_sequence_not_transport_seq() {
        // Distinct flow sequence (0xAAAA) and transport sequence (0x3BBB)
        // so a swap or copy-paste of the two fields cannot go unnoticed.
        let rtp = SimRtp {
            kind: RtpKind::Media(vp(0xAAAA, PacketKind::Media { index: 0, count: 1 })),
            path: PathId(1),
            transport_seq: 0x3BBB,
            sent_at: SimTime::from_millis(3),
        };
        let wire = encode_rtp(&rtp);
        let pkt = RtpPacket::parse(wire.clone()).unwrap();
        let ext = pkt.extension.expect("multipath extension");
        assert_eq!(ext.mp_sequence, 0xAAAA, "flow-level media sequence");
        assert_eq!(ext.mp_transport_sequence, 0x3BBB, "per-path transport seq");
        assert_ne!(ext.mp_sequence, ext.mp_transport_sequence);
        let back = decode_rtp(wire, rtp.sent_at).expect("decode");
        assert_eq!(back, rtp);
    }

    #[test]
    fn marker_set_on_last_media_packet() {
        let rtp = SimRtp {
            kind: RtpKind::Media(vp(1, PacketKind::Media { index: 6, count: 7 })),
            path: PathId(0),
            transport_seq: 0,
            sent_at: SimTime::ZERO,
        };
        let pkt = RtpPacket::parse(encode_rtp(&rtp)).unwrap();
        assert!(pkt.marker);
    }

    #[test]
    fn truncated_wire_rejected() {
        let rtp = SimRtp {
            kind: RtpKind::Media(vp(1, PacketKind::Media { index: 0, count: 1 })),
            path: PathId(0),
            transport_seq: 0,
            sent_at: SimTime::ZERO,
        };
        let wire = encode_rtp(&rtp);
        for cut in 13..wire.len() - 1 {
            assert!(
                decode_rtp(wire.slice(0..cut), SimTime::ZERO).is_err(),
                "cut at {cut} must fail"
            );
        }
    }
}
