//! Scenario construction: the network setups of the paper's evaluation and
//! factories for schedulers and FEC policies.

use converge_core::{
    ConnectionMigration, ConvergeFec, ConvergeScheduler, ConvergeSchedulerConfig, FecPolicy,
    MRtpScheduler, MTputScheduler, Scheduler, SinglePathScheduler, SrttScheduler, WebRtcTableFec,
};
use converge_net::{
    trace, BlackoutSchedule, Carrier, DriveParseError, DriveTrace, ImpairmentConfig, LinkConfig,
    LossModel, Path, PathId, QueueDiscipline, RateTrace, Scenario, SimDuration, SimTime,
};

/// Which scheduler to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SchedulerKind {
    /// Converge's video-aware scheduler with feedback.
    Converge,
    /// Converge with the QoE feedback loop disabled (ablation, Fig. 11).
    ConvergeNoFeedback,
    /// Converge with packet priorities disabled (video-awareness ablation).
    ConvergeNoPriority,
    /// Converge selecting the fast path by minRTT instead of completion
    /// time (Algorithm 1 ablation).
    ConvergeMinRttFast,
    /// Single-path WebRTC pinned to a path index.
    SinglePath(u8),
    /// WebRTC-CM starting on a path index.
    ConnectionMigration(u8),
    /// minRTT (the MPTCP/MPQUIC default).
    Srtt,
    /// Musher-style throughput-proportional.
    MTput,
    /// MPRTP-style loss-discounted rate splitting.
    MRtp,
}

impl SchedulerKind {
    /// Human-readable label matching the paper's terminology.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Converge => "Converge",
            SchedulerKind::ConvergeNoFeedback => "Converge (no feedback)",
            SchedulerKind::ConvergeNoPriority => "Converge (no priority)",
            SchedulerKind::ConvergeMinRttFast => "Converge (minRTT fast path)",
            SchedulerKind::SinglePath(_) => "WebRTC",
            SchedulerKind::ConnectionMigration(_) => "WebRTC-CM",
            SchedulerKind::Srtt => "SRTT",
            SchedulerKind::MTput => "M-TPUT",
            SchedulerKind::MRtp => "M-RTP",
        }
    }

    /// Builds the scheduler.
    pub fn build(&self, frame_interval: SimDuration) -> Box<dyn Scheduler> {
        match *self {
            SchedulerKind::Converge => {
                let cfg = ConvergeSchedulerConfig {
                    batch_interval: frame_interval,
                    ..Default::default()
                };
                Box::new(ConvergeScheduler::new(cfg))
            }
            SchedulerKind::ConvergeNoFeedback => {
                let cfg = ConvergeSchedulerConfig {
                    batch_interval: frame_interval,
                    use_feedback: false,
                    ..Default::default()
                };
                Box::new(ConvergeScheduler::new(cfg))
            }
            SchedulerKind::ConvergeNoPriority => {
                let cfg = ConvergeSchedulerConfig {
                    batch_interval: frame_interval,
                    use_priority: false,
                    ..Default::default()
                };
                Box::new(ConvergeScheduler::new(cfg))
            }
            SchedulerKind::ConvergeMinRttFast => {
                let cfg = ConvergeSchedulerConfig {
                    batch_interval: frame_interval,
                    fast_path_metric: converge_core::FastPathMetric::MinRtt,
                    ..Default::default()
                };
                Box::new(ConvergeScheduler::new(cfg))
            }
            SchedulerKind::SinglePath(p) => Box::new(SinglePathScheduler::new(PathId(p))),
            SchedulerKind::ConnectionMigration(p) => Box::new(ConnectionMigration::new(PathId(p))),
            SchedulerKind::Srtt => Box::new(SrttScheduler::new(1250, frame_interval)),
            SchedulerKind::MTput => Box::new(MTputScheduler::new()),
            SchedulerKind::MRtp => Box::new(MRtpScheduler::new()),
        }
    }
}

/// Which FEC policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FecKind {
    /// Converge's path-specific `l·P·β` controller.
    Converge,
    /// WebRTC's static table-based controller.
    WebRtcTable,
    /// No FEC at all (ablation).
    None,
}

/// A no-op FEC policy for ablations.
#[derive(Debug)]
struct NoFec;

impl FecPolicy for NoFec {
    fn name(&self) -> &'static str {
        "no-fec"
    }
    fn repair_count(&mut self, _: SimTime, _: PathId, _: usize, _: f64, _: bool) -> usize {
        0
    }
}

impl FecKind {
    /// Builds the policy.
    pub fn build(&self) -> Box<dyn FecPolicy> {
        match self {
            FecKind::Converge => Box::new(ConvergeFec::new()),
            FecKind::WebRtcTable => Box::new(WebRtcTableFec::new()),
            FecKind::None => Box::new(NoFec),
        }
    }
}

/// A path specification for scenario construction.
#[derive(Debug, Clone)]
pub struct PathSpec {
    /// Forward bandwidth trace.
    pub rate: RateTrace,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Random loss model.
    pub loss: LossModel,
    /// Queue capacity in bytes.
    pub queue_bytes: usize,
    /// Per-packet delay jitter bound (uniform in [0, jitter]); cellular
    /// air-interface scheduling reorders packets, which the receiver's
    /// buffers must absorb.
    pub jitter: SimDuration,
    /// Bottleneck queue discipline (drop-tail unless an AQM experiment
    /// overrides it).
    pub discipline: QueueDiscipline,
    /// Fault injection on the forward (media) direction. No-op by default.
    pub forward_impairment: ImpairmentConfig,
    /// Fault injection on the reverse (RTCP feedback) direction. No-op by
    /// default; setting it alone models a starved feedback channel while
    /// media flows clean.
    pub reverse_impairment: ImpairmentConfig,
    /// Replayed drive capture. When set it overrides `rate`, `propagation`,
    /// and `loss` on both directions (the two directions share one radio,
    /// so a coverage gap darkens the feedback channel too). `None` for
    /// every synthetic scenario.
    pub drive: Option<DriveTrace>,
}

impl Default for PathSpec {
    /// A clean 10 Mbps / 20 ms path — mainly useful as a struct-update
    /// base (`..PathSpec::default()`).
    fn default() -> Self {
        PathSpec::constant(10_000_000, 20, 0.0)
    }
}

impl PathSpec {
    /// A constant-rate path.
    pub fn constant(rate_bps: u64, one_way_ms: u64, loss_pct: f64) -> Self {
        PathSpec {
            rate: RateTrace::constant(rate_bps),
            propagation: SimDuration::from_millis(one_way_ms),
            loss: if loss_pct > 0.0 {
                LossModel::bernoulli_percent(loss_pct)
            } else {
                LossModel::None
            },
            // ~1.5x BDP of a 25 Mbps / 100 ms path by default.
            queue_bytes: 300_000,
            jitter: SimDuration::ZERO,
            discipline: QueueDiscipline::DropTail,
            forward_impairment: ImpairmentConfig::default(),
            reverse_impairment: ImpairmentConfig::default(),
            drive: None,
        }
    }

    /// A path replaying a drive capture: rate, one-way delay, and loss all
    /// follow the trace. The static fields are set from the capture's
    /// initial sample so code that inspects them (e.g. `Path::base_rtt`)
    /// sees sensible values.
    pub fn from_drive(drive: DriveTrace) -> Self {
        let first = drive.samples()[0];
        PathSpec {
            rate: RateTrace::constant(first.rate_bps),
            propagation: first.owd,
            loss: LossModel::None,
            queue_bytes: 300_000,
            jitter: SimDuration::ZERO,
            discipline: QueueDiscipline::DropTail,
            forward_impairment: ImpairmentConfig::default(),
            reverse_impairment: ImpairmentConfig::default(),
            drive: Some(drive),
        }
    }

    /// Applies the same impairment to both directions.
    pub fn impaired_both(mut self, impairment: ImpairmentConfig) -> Self {
        self.forward_impairment = impairment;
        self.reverse_impairment = impairment;
        self
    }

    /// Builds the emulated path.
    pub fn build(&self, id: PathId, seed: u64) -> Path {
        let fwd = LinkConfig {
            rate: self.rate.clone(),
            propagation: self.propagation,
            queue_capacity_bytes: self.queue_bytes,
            loss: self.loss.clone(),
            jitter: self.jitter,
            discipline: self.discipline.clone(),
            seed,
            impairment: self.forward_impairment,
            drive: self.drive.clone(),
        };
        // Mirror Path::symmetric (uncongested feedback queue, independent
        // seed) while letting each direction carry its own impairment.
        let mut rev = fwd.clone();
        rev.queue_capacity_bytes = rev.queue_capacity_bytes.max(1_000_000);
        rev.seed = fwd.seed.wrapping_add(0x5EED);
        rev.impairment = self.reverse_impairment;
        Path::new(id, fwd, rev)
    }
}

/// The named chaos impairments of the fault-injection matrix. Each picks
/// one adversarial behaviour the paper's claims must survive (§5's
/// handover, loss, and violent-variation conditions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ImpairmentKind {
    /// One long carrier blackout on path 1 (handover outage).
    Blackout,
    /// Periodic short outages on path 1 (handover flapping).
    Flap,
    /// Heavy forward reordering on path 1 (air-interface scheduling).
    Reorder,
    /// Forward duplication on path 1 (middlebox retransmission).
    Duplicate,
    /// Lossy, slow RTCP feedback on path 1 with clean media.
    FeedbackLoss,
}

impl ImpairmentKind {
    /// All matrix rows.
    pub const ALL: [ImpairmentKind; 5] = [
        ImpairmentKind::Blackout,
        ImpairmentKind::Flap,
        ImpairmentKind::Reorder,
        ImpairmentKind::Duplicate,
        ImpairmentKind::FeedbackLoss,
    ];

    /// Short stable identifier used in scenario names and cache keys.
    pub fn id(&self) -> &'static str {
        match self {
            ImpairmentKind::Blackout => "blackout",
            ImpairmentKind::Flap => "flap",
            ImpairmentKind::Reorder => "reorder",
            ImpairmentKind::Duplicate => "duplicate",
            ImpairmentKind::FeedbackLoss => "fbloss",
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            ImpairmentKind::Blackout => "carrier blackout",
            ImpairmentKind::Flap => "handover flap",
            ImpairmentKind::Reorder => "reordering",
            ImpairmentKind::Duplicate => "duplication",
            ImpairmentKind::FeedbackLoss => "feedback loss",
        }
    }
}

/// A complete scenario: the paths of one experiment.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Per-path specifications; index = path ID.
    pub paths: Vec<PathSpec>,
    /// Descriptive name.
    pub name: String,
}

impl ScenarioConfig {
    /// The walking scenario of §6.1: WiFi + "T-Mobile"-like cellular.
    pub fn walking(duration: SimDuration, seed: u64) -> Self {
        ScenarioConfig {
            name: "walking".into(),
            paths: vec![
                PathSpec {
                    rate: trace::synthesize(Scenario::Walking, Carrier::Wifi, duration, seed),
                    propagation: SimDuration::from_millis(15),
                    loss: LossModel::bursty_percent(0.2),
                    queue_bytes: 300_000,
                    jitter: SimDuration::from_millis(2),
                    discipline: QueueDiscipline::DropTail,
                    ..Default::default()
                },
                PathSpec {
                    rate: trace::synthesize(Scenario::Walking, Carrier::CellularA, duration, seed),
                    propagation: SimDuration::from_millis(35),
                    loss: LossModel::bursty_percent(0.4),
                    queue_bytes: 300_000,
                    jitter: SimDuration::from_millis(5),
                    discipline: QueueDiscipline::DropTail,
                    ..Default::default()
                },
            ],
        }
    }

    /// The driving scenario of §6.1: "Verizon" + "T-Mobile" cellular.
    pub fn driving(duration: SimDuration, seed: u64) -> Self {
        ScenarioConfig {
            name: "driving".into(),
            paths: vec![
                PathSpec {
                    rate: trace::synthesize(Scenario::Driving, Carrier::CellularB, duration, seed),
                    propagation: SimDuration::from_millis(40),
                    loss: LossModel::bursty_percent(0.7),
                    queue_bytes: 250_000,
                    jitter: SimDuration::from_millis(8),
                    discipline: QueueDiscipline::DropTail,
                    ..Default::default()
                },
                PathSpec {
                    rate: trace::synthesize(Scenario::Driving, Carrier::CellularA, duration, seed),
                    propagation: SimDuration::from_millis(35),
                    loss: LossModel::bursty_percent(0.7),
                    queue_bytes: 250_000,
                    jitter: SimDuration::from_millis(8),
                    discipline: QueueDiscipline::DropTail,
                    ..Default::default()
                },
            ],
        }
    }

    /// The stationary scenario of Appendix A: WiFi + cellular, both stable.
    pub fn stationary(duration: SimDuration, seed: u64) -> Self {
        ScenarioConfig {
            name: "stationary".into(),
            paths: vec![
                PathSpec {
                    rate: trace::synthesize(Scenario::Stationary, Carrier::Wifi, duration, seed),
                    propagation: SimDuration::from_millis(10),
                    loss: LossModel::bursty_percent(0.1),
                    queue_bytes: 400_000,
                    jitter: SimDuration::from_millis(1),
                    discipline: QueueDiscipline::DropTail,
                    ..Default::default()
                },
                PathSpec {
                    rate: trace::synthesize(
                        Scenario::Stationary,
                        Carrier::CellularA,
                        duration,
                        seed,
                    ),
                    propagation: SimDuration::from_millis(30),
                    loss: LossModel::bursty_percent(0.3),
                    queue_bytes: 300_000,
                    jitter: SimDuration::from_millis(3),
                    discipline: QueueDiscipline::DropTail,
                    ..Default::default()
                },
            ],
        }
    }

    /// The feedback-benefit scenario of Fig. 11: path 1 steady at ~25 Mbps,
    /// path 2 equal at first, collapsing to 0.5–2.5 Mbps between 30 s and
    /// 90 s, then recovering.
    pub fn feedback_benefit(duration: SimDuration, seed: u64) -> Self {
        use rand::{Rng, SeedableRng};
        let step = SimDuration::from_millis(500);
        let n = (duration.as_micros() / step.as_micros()) as usize;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let rates: Vec<u64> = (0..n)
            .map(|i| {
                let t = i as f64 * 0.5;
                if (30.0..90.0).contains(&t) {
                    rng.gen_range(500_000..2_500_000)
                } else {
                    25_000_000
                }
            })
            .collect();
        ScenarioConfig {
            name: "feedback-benefit".into(),
            paths: vec![
                PathSpec {
                    rate: RateTrace::constant(25_000_000),
                    propagation: SimDuration::from_millis(25),
                    loss: LossModel::None,
                    queue_bytes: 300_000,
                    jitter: SimDuration::ZERO,
                    discipline: QueueDiscipline::DropTail,
                    ..Default::default()
                },
                PathSpec {
                    rate: RateTrace::new(step, rates),
                    propagation: SimDuration::from_millis(25),
                    loss: LossModel::bernoulli_percent(0.5),
                    queue_bytes: 300_000,
                    jitter: SimDuration::ZERO,
                    discipline: QueueDiscipline::DropTail,
                    ..Default::default()
                },
            ],
        }
    }

    /// The FEC trade-off scenario of Figs. 12/13 and Table 5: two 15 Mbps
    /// paths, 100 ms propagation (50 ms one-way), `loss_pct` percent loss.
    pub fn fec_tradeoff(loss_pct: f64) -> Self {
        ScenarioConfig {
            name: format!("fec-tradeoff-{loss_pct}pct"),
            paths: vec![
                PathSpec::constant(15_000_000, 50, loss_pct),
                PathSpec::constant(15_000_000, 50, loss_pct),
            ],
        }
    }

    /// Builds a scenario replaying externally collected bandwidth traces
    /// (CSV `seconds,bits_per_sec`, as produced by `trace-tool gen` or any
    /// capture pipeline). One path per trace, with the given one-way
    /// propagation delays.
    pub fn from_traces(
        traces: &[(&str, SimDuration)],
    ) -> Result<Self, converge_net::trace::TraceParseError> {
        let mut paths = Vec::with_capacity(traces.len());
        for (csv, propagation) in traces {
            paths.push(PathSpec {
                rate: RateTrace::from_csv(csv)?,
                propagation: *propagation,
                loss: LossModel::None,
                queue_bytes: 300_000,
                jitter: SimDuration::ZERO,
                discipline: QueueDiscipline::DropTail,
                ..Default::default()
            });
        }
        Ok(ScenarioConfig {
            name: "trace-replay".into(),
            paths,
        })
    }

    /// Builds a scenario from multi-path drive-replay JSONL (see
    /// [`DriveTrace::parse_jsonl`] for the row format): one path per path
    /// ID in the file, each replaying its rate/OWD/loss capture.
    pub fn from_drive_str(jsonl: &str) -> Result<Self, DriveParseError> {
        let traces = DriveTrace::parse_jsonl(jsonl)?;
        Ok(ScenarioConfig {
            name: "drive-replay".into(),
            paths: traces.into_iter().map(PathSpec::from_drive).collect(),
        })
    }

    /// Reads a drive-replay JSONL file from disk and builds its scenario.
    /// The scenario is named after the file stem (`drive-<stem>`).
    pub fn from_drive_file(path: impl AsRef<std::path::Path>) -> Result<Self, DriveLoadError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(DriveLoadError::Io)?;
        let mut scenario = Self::from_drive_str(&text).map_err(DriveLoadError::Parse)?;
        if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
            scenario.name = format!("drive-{stem}");
        }
        Ok(scenario)
    }

    /// A first-class 4–8 path topology mixing the asymmetries a
    /// multi-radio vehicle actually sees: WiFi (low RTT, dies when out of
    /// range), several cellular carriers with staggered coverage, and
    /// satellite (high RTT, stable). Paths beyond the paper's 2–3 stress
    /// the scheduler's share bookkeeping and the FEC controller's per-path
    /// state at widths the presets never reach.
    ///
    /// # Panics
    /// Panics unless `4 <= n_paths <= 8`.
    pub fn multi_carrier(n_paths: usize, duration: SimDuration, seed: u64) -> Self {
        assert!(
            (4..=8).contains(&n_paths),
            "multi_carrier supports 4-8 paths, got {n_paths}"
        );
        let cell = |scenario, carrier, one_way_ms: u64, jitter_ms: u64, loss: f64, salt: u64| {
            PathSpec {
                rate: trace::synthesize(scenario, carrier, duration, seed.wrapping_add(salt)),
                propagation: SimDuration::from_millis(one_way_ms),
                loss: LossModel::bursty_percent(loss),
                queue_bytes: 250_000,
                jitter: SimDuration::from_millis(jitter_ms),
                ..Default::default()
            }
        };
        let sat = |rate_bps: u64, one_way_ms: u64, jitter_ms: u64| PathSpec {
            rate: RateTrace::constant(rate_bps),
            propagation: SimDuration::from_millis(one_way_ms),
            loss: LossModel::bursty_percent(0.3),
            queue_bytes: 400_000,
            jitter: SimDuration::from_millis(jitter_ms),
            ..Default::default()
        };
        let all = vec![
            // 0: in-vehicle WiFi — fast but walking-grade coverage.
            cell(Scenario::Walking, Carrier::Wifi, 12, 2, 0.2, 0),
            // 1-2: the two driving carriers of §6.1.
            cell(Scenario::Driving, Carrier::CellularA, 35, 8, 0.7, 1),
            cell(Scenario::Driving, Carrier::CellularB, 40, 8, 0.7, 2),
            // 3: GEO satellite — stable rate, painful RTT.
            sat(18_000_000, 280, 10),
            // 4-5: secondary SIMs on the same carriers, different towers.
            cell(Scenario::Driving, Carrier::CellularA, 45, 10, 1.0, 3),
            cell(Scenario::Walking, Carrier::CellularB, 30, 5, 0.4, 4),
            // 6: LEO satellite — moderate RTT, moderate rate.
            sat(12_000_000, 60, 15),
            // 7: roaming partner cellular — slow and far.
            cell(Scenario::Driving, Carrier::CellularB, 70, 12, 1.5, 5),
        ];
        ScenarioConfig {
            name: format!("multi-carrier-{n_paths}"),
            paths: all.into_iter().take(n_paths).collect(),
        }
    }

    /// The chaos matrix scenario: path 0 is a clean 15 Mbps / 30 ms
    /// reference, path 1 is an equal-rate 50 ms path carrying one named
    /// impairment. Keeping exactly one fault per scenario makes matrix
    /// failures attributable.
    pub fn chaos(kind: ImpairmentKind) -> Self {
        let clean = PathSpec::constant(15_000_000, 30, 0.0);
        let victim = PathSpec::constant(15_000_000, 50, 0.0);
        let victim = match kind {
            // A single 5 s outage starting at 10 s, both directions dark —
            // the monitor must declare the path down and the scheduler
            // must survive on path 0, then re-enable per Eq. 3.
            ImpairmentKind::Blackout => victim.impaired_both(ImpairmentConfig::blackout(
                BlackoutSchedule::single(SimTime::from_secs(10), SimDuration::from_secs(5)),
            )),
            // 1 s dark out of every 4 s from 5 s on — repeated
            // disable/re-enable churn.
            ImpairmentKind::Flap => victim.impaired_both(ImpairmentConfig::blackout(
                BlackoutSchedule::flapping(
                    SimTime::from_secs(5),
                    SimDuration::from_secs(1),
                    SimDuration::from_secs(4),
                ),
            )),
            // A quarter of media packets held back up to 40 ms — far past
            // the jitter the receiver buffers were tuned for.
            ImpairmentKind::Reorder => PathSpec {
                forward_impairment: ImpairmentConfig::reordering(
                    0.25,
                    SimDuration::from_millis(40),
                ),
                ..victim
            },
            // 5% of media packets delivered twice within 5 ms.
            ImpairmentKind::Duplicate => PathSpec {
                forward_impairment: ImpairmentConfig::duplication(
                    0.05,
                    SimDuration::from_millis(5),
                ),
                ..victim
            },
            // Media clean, feedback direction losing 30% with +30 ms —
            // the control loop must degrade gracefully on stale RTCP.
            ImpairmentKind::FeedbackLoss => PathSpec {
                reverse_impairment: ImpairmentConfig::degraded(
                    0.30,
                    SimDuration::from_millis(30),
                ),
                ..victim
            },
        };
        ScenarioConfig {
            name: format!("chaos-{}", kind.id()),
            paths: vec![clean, victim],
        }
    }

    /// Builds the emulated paths, seeding each link differently.
    pub fn build_paths(&self, seed: u64) -> Vec<Path> {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, spec)| spec.build(PathId(i as u8), seed.wrapping_add(i as u64 * 7919)))
            .collect()
    }
}

/// Errors from [`ScenarioConfig::from_drive_file`]: the file couldn't be
/// read, or its contents couldn't be parsed.
#[derive(Debug)]
pub enum DriveLoadError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The file's contents were not valid drive-replay JSONL.
    Parse(DriveParseError),
}

impl std::fmt::Display for DriveLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveLoadError::Io(e) => write!(f, "reading drive file: {e}"),
            DriveLoadError::Parse(e) => write!(f, "parsing drive file: {e}"),
        }
    }
}

impl std::error::Error for DriveLoadError {}

#[cfg(test)]
mod tests {
    use super::*;
    use converge_net::SimTime;

    #[test]
    fn scheduler_kinds_build() {
        let iv = SimDuration::from_micros(33_333);
        for kind in [
            SchedulerKind::Converge,
            SchedulerKind::ConvergeNoFeedback,
            SchedulerKind::ConvergeNoPriority,
            SchedulerKind::ConvergeMinRttFast,
            SchedulerKind::SinglePath(0),
            SchedulerKind::ConnectionMigration(1),
            SchedulerKind::Srtt,
            SchedulerKind::MTput,
            SchedulerKind::MRtp,
        ] {
            let s = kind.build(iv);
            assert!(!s.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn fec_kinds_build() {
        for kind in [FecKind::Converge, FecKind::WebRtcTable, FecKind::None] {
            let mut f = kind.build();
            let n = f.repair_count(SimTime::ZERO, PathId(0), 100, 0.05, false);
            match kind {
                FecKind::None => assert_eq!(n, 0),
                _ => assert!(n > 0),
            }
        }
    }

    #[test]
    fn scenarios_have_two_paths() {
        let d = SimDuration::from_secs(30);
        for cfg in [
            ScenarioConfig::walking(d, 1),
            ScenarioConfig::driving(d, 1),
            ScenarioConfig::stationary(d, 1),
            ScenarioConfig::feedback_benefit(d, 1),
            ScenarioConfig::fec_tradeoff(5.0),
        ] {
            assert_eq!(cfg.paths.len(), 2, "{}", cfg.name);
            let paths = cfg.build_paths(9);
            assert_eq!(paths.len(), 2);
            assert_eq!(paths[0].id(), PathId(0));
            assert_eq!(paths[1].id(), PathId(1));
        }
    }

    #[test]
    fn feedback_benefit_trace_shape() {
        let cfg = ScenarioConfig::feedback_benefit(SimDuration::from_secs(120), 3);
        let p2 = &cfg.paths[1].rate;
        // Before 30 s: full rate; during the dip: 0.5–2.5 Mbps.
        assert_eq!(p2.rate_at(SimTime::from_secs(10)), 25_000_000);
        let dip = p2.rate_at(SimTime::from_secs(60));
        assert!((500_000..2_500_000).contains(&dip), "{dip}");
        assert_eq!(p2.rate_at(SimTime::from_secs(100)), 25_000_000);
    }

    #[test]
    fn from_traces_replays_csv() {
        let csv1 = "0.0,10000000\n0.5,5000000\n1.0,10000000\n";
        let csv2 = "0.0,8000000\n0.5,8000000\n1.0,2000000\n";
        let cfg = ScenarioConfig::from_traces(&[
            (csv1, SimDuration::from_millis(20)),
            (csv2, SimDuration::from_millis(40)),
        ])
        .expect("valid traces");
        assert_eq!(cfg.paths.len(), 2);
        assert_eq!(
            cfg.paths[0]
                .rate
                .rate_at(converge_net::SimTime::from_millis(600)),
            5_000_000
        );
        assert!(ScenarioConfig::from_traces(&[("garbage", SimDuration::ZERO)]).is_err());
    }

    #[test]
    fn chaos_scenarios_build_with_one_fault_each() {
        for kind in ImpairmentKind::ALL {
            let cfg = ScenarioConfig::chaos(kind);
            assert_eq!(cfg.name, format!("chaos-{}", kind.id()));
            assert_eq!(cfg.paths.len(), 2);
            // Path 0 is always the clean reference.
            assert!(cfg.paths[0].forward_impairment.is_noop());
            assert!(cfg.paths[0].reverse_impairment.is_noop());
            // Path 1 carries the fault on at least one direction.
            assert!(
                !cfg.paths[1].forward_impairment.is_noop()
                    || !cfg.paths[1].reverse_impairment.is_noop(),
                "{kind:?}"
            );
            let paths = cfg.build_paths(3);
            assert_eq!(paths.len(), 2);
        }
        // FeedbackLoss impairs only the reverse direction.
        let fb = ScenarioConfig::chaos(ImpairmentKind::FeedbackLoss);
        assert!(fb.paths[1].forward_impairment.is_noop());
        assert!(!fb.paths[1].reverse_impairment.is_noop());
    }

    #[test]
    fn path_spec_impairments_reach_the_links() {
        use converge_net::{Direction, SendOutcome};
        let spec = PathSpec::constant(10_000_000, 10, 0.0).impaired_both(
            ImpairmentConfig::blackout(BlackoutSchedule::single(
                SimTime::ZERO,
                SimDuration::from_secs(1),
            )),
        );
        let mut emu: converge_net::NetworkEmulator<u8> =
            converge_net::NetworkEmulator::new(vec![spec.build(PathId(0), 1)]);
        let (fwd, _) = emu.send(PathId(0), Direction::Forward, SimTime::ZERO, 100, 0);
        let (rev, _) = emu.send(PathId(0), Direction::Reverse, SimTime::ZERO, 100, 0);
        assert_eq!(fwd, SendOutcome::Blackout);
        assert_eq!(rev, SendOutcome::Blackout);
    }

    #[test]
    fn from_drive_str_builds_one_path_per_id() {
        let jsonl = "\
{\"t\":0.0,\"path\":0,\"rate_bps\":10000000,\"owd_ms\":20,\"loss_pct\":0}\n\
{\"t\":0.0,\"path\":1,\"rate_bps\":5000000,\"owd_ms\":80,\"loss_pct\":1.5}\n\
{\"t\":5.0,\"path\":0,\"rate_bps\":2000000,\"owd_ms\":60,\"loss_pct\":3}\n";
        let cfg = ScenarioConfig::from_drive_str(jsonl).expect("parses");
        assert_eq!(cfg.paths.len(), 2);
        // Static fields mirror the initial sample; the drive is attached.
        assert_eq!(cfg.paths[0].propagation.as_millis(), 20);
        assert_eq!(cfg.paths[1].propagation.as_millis(), 80);
        let drive = cfg.paths[0].drive.as_ref().expect("drive attached");
        assert_eq!(drive.rate_at(SimTime::from_secs(6)), 2_000_000);
        // The drive reaches the built links, both directions.
        let paths = cfg.build_paths(5);
        assert!(paths[0].link(converge_net::Direction::Forward).config().drive.is_some());
        assert!(paths[0].link(converge_net::Direction::Reverse).config().drive.is_some());
    }

    #[test]
    fn multi_carrier_builds_4_to_8_paths() {
        let d = SimDuration::from_secs(30);
        for n in 4..=8 {
            let cfg = ScenarioConfig::multi_carrier(n, d, 3);
            assert_eq!(cfg.paths.len(), n);
            assert_eq!(cfg.name, format!("multi-carrier-{n}"));
            let paths = cfg.build_paths(3);
            assert_eq!(paths.len(), n);
            for (i, p) in paths.iter().enumerate() {
                assert_eq!(p.id(), PathId(i as u8));
            }
        }
        // The mix is genuinely asymmetric: the satellite path's RTT dwarfs
        // the WiFi path's.
        let cfg = ScenarioConfig::multi_carrier(4, d, 3);
        assert!(cfg.paths[3].propagation >= cfg.paths[0].propagation * 10);
    }

    #[test]
    #[should_panic(expected = "multi_carrier supports 4-8 paths")]
    fn multi_carrier_rejects_narrow_topologies() {
        let _ = ScenarioConfig::multi_carrier(3, SimDuration::from_secs(10), 1);
    }

    #[test]
    fn fec_tradeoff_loss_applied() {
        let cfg = ScenarioConfig::fec_tradeoff(7.0);
        assert!(matches!(cfg.paths[0].loss, LossModel::Bernoulli { p } if (p - 0.07).abs() < 1e-9));
        let zero = ScenarioConfig::fec_tradeoff(0.0);
        assert_eq!(zero.paths[0].loss, LossModel::None);
    }
}
