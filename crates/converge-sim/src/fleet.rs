//! Fleet-scale session engine: thousands of concurrent conference calls
//! multiplexed into shared discrete-event machinery.
//!
//! [`Session`](crate::Session) runs one call with its own event queue,
//! timer set, and emulator. At fleet scale that per-call machinery is the
//! bottleneck: N sessions mean N heaps to poll and N × (rings + queues) of
//! memory even though almost every session is idle at any given instant.
//! [`FleetEngine`] instead drives whole *batches* of conferences through
//! one shared [`EventQueue`] (in-flight packets) plus one shared
//! [`TimerWheel`] (pacer, frame, and RTCP ticks), so the scheduler cost is
//! O(due events), not O(sessions), and the arena-backed queue keeps memory
//! proportional to in-flight packets rather than to session count.
//!
//! ## Topology
//!
//! Every conference terminates on an [`SfuNode`]: each member uplinks over
//! its own private multipath access network (two seeded paths by default)
//! into the conference's shared ingress bottleneck; accepted media is
//! observed by an SFU-side receiver (uplink QoE) and fanned out to the
//! other members over the shared egress link as payload-free
//! [`ForwardPacket`] descriptors. RTCP feedback travels back over the
//! member's private reverse paths, so every member runs the full
//! sender/receiver/congestion-control pipeline of a normal session.
//!
//! ## Determinism across shard counts
//!
//! Conferences never share mutable state — the SFU, SBD detector, and all
//! member state are per-conference — so a conference's event subsequence
//! is invariant to how conferences are interleaved in a shard's queue.
//! Batches are distributed over worker shards by work-stealing and the
//! results merged back in conference-index order, which makes the
//! aggregate fold byte-identical for any shard count. Wall-clock numbers
//! never enter [`FleetReport::fold_text`].
//!
//! ## Shared-bottleneck coupling
//!
//! When enabled, an RFC 8382 skewness-based [`SbdDetector`] samples
//! one-way delay at the ingress bottleneck and groups members whose OWD
//! signatures match; grouped members have their congestion-controller
//! increase step scaled by `1/group_size` (coupled growth), emitting
//! [`TraceEvent::SbdGroupsChanged`] when the grouping flips.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use converge_cc::{ControllerConfig, SbdDetector};
use converge_core::PacketClass;
use converge_net::{
    event::EventQueue, Direction, ForwardPacket, MemberId, Path, PathId, SfuConfig, SfuNode,
    SfuStats, SimDuration, SimTime, TimerWheel, TimerWheelStats, Transmit,
};
use converge_rtp::RtcpPacket;
use converge_trace::{jsonl, InvariantSink, RingSink, TraceEvent, TraceHandle};
use converge_video::{FrameType, PacketKind};

use crate::metrics::{CallReport, MetricsCollector};
use crate::pacer::{Pacer, PacerConfig};
use crate::payload::{NetPayload, RtpKind, SimRtp};
use crate::receiver::{ConferenceReceiver, ReceiverEvent};
use crate::scenarios::{FecKind, PathSpec, SchedulerKind};
use crate::sender::{ConferenceSender, OutboundPacket, SenderSizing};

/// Receiver `recent` ring size for fleet members: every hit is verified
/// against the stored sequence, so the small ring only shortens the FEC
/// horizon (see [`ConferenceReceiver::new_sized`]).
const FLEET_RECENT_SLOTS: usize = 512;

/// Intervals an SBD detector must close before its grouping is applied
/// (RFC 8382 wants a populated observation window before acting).
const SBD_WARMUP_INTERVALS: u64 = 3;

/// Configuration of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Total concurrent sessions (conference members) across the fleet.
    pub sessions: usize,
    /// Members per conference (≥ 2; the last conference may be smaller).
    pub conference_size: usize,
    /// Worker shards. Each shard owns one reusable event queue + timer
    /// wheel and steals conference batches until none remain.
    pub shards: usize,
    /// Conferences per batch (the work-stealing granule).
    pub batch_conferences: usize,
    /// Call duration.
    pub duration: SimDuration,
    /// Master seed; per-member seeds are split deterministically from it.
    pub seed: u64,
    /// Shared ingress bottleneck rate per conference, bps.
    pub bottleneck_ingress_bps: u64,
    /// Encoder cap per stream, bps.
    pub max_encoding_rate_bps: u64,
    /// Camera streams per member.
    pub streams: u8,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// FEC policy under test.
    pub fec: FecKind,
    /// Per-path congestion controller.
    pub controller: ControllerConfig,
    /// Run RFC 8382 shared-bottleneck detection per conference and couple
    /// grouped members' controller growth.
    pub sbd: bool,
    /// Capture structured traces (RingSink) for the first N conferences.
    pub trace_conferences: usize,
    /// Arm an [`InvariantSink`] on every member and count violations.
    pub check_invariants: bool,
}

impl FleetConfig {
    /// A fleet of `sessions` members in conferences of `conference_size`,
    /// with the paper-flavoured defaults used by the `fleet` benchmark.
    pub fn new(sessions: usize, conference_size: usize) -> Self {
        FleetConfig {
            sessions,
            conference_size: conference_size.max(2),
            shards: 1,
            batch_conferences: 32,
            duration: SimDuration::from_secs(20),
            seed: 1,
            bottleneck_ingress_bps: 8_000_000,
            max_encoding_rate_bps: 2_000_000,
            streams: 1,
            scheduler: SchedulerKind::Converge,
            fec: FecKind::Converge,
            controller: ControllerConfig::default(),
            sbd: true,
            trace_conferences: 0,
            check_invariants: false,
        }
    }

    /// Number of conferences the sessions fold into.
    pub fn conference_count(&self) -> usize {
        self.sessions.div_ceil(self.conference_size)
    }

    /// Members of conference `conf`. The last conference takes whatever
    /// remainder is left (a 1-member tail simply has no viewers).
    fn members_of(&self, conf: usize) -> usize {
        let done = conf * self.conference_size;
        let left = self.sessions.saturating_sub(done);
        left.min(self.conference_size).max(1)
    }
}

/// SplitMix64: the per-member seed derivation. Deterministic in the
/// global conference/member index, so a member's access network is
/// identical no matter which shard runs it.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn member_seed(master: u64, conf: u32, member: MemberId) -> u64 {
    splitmix64(master ^ splitmix64(((conf as u64) << 16) | member as u64))
}

/// The default member access network: a WiFi-like and a cellular-like
/// path, both constant-rate with light random loss. Constant rates keep
/// per-packet cost minimal at fleet scale; variation comes from cross-
/// member contention at the shared bottleneck.
fn member_paths(seed: u64) -> Vec<Path> {
    let wifi = PathSpec::constant(6_000_000, 15, 0.1);
    let cell = PathSpec::constant(4_000_000, 35, 0.2);
    vec![
        wifi.build(PathId(0), seed),
        cell.build(PathId(1), seed.wrapping_add(7919)),
    ]
}

/// Events in the shared per-shard queue. Keyed by `(time, seq)` in the
/// queue itself; the payload names the conference/member so processing
/// can route straight to the owning state.
#[derive(Debug)]
enum FleetEvent {
    /// A packet finished crossing one of a member's private paths.
    Deliver {
        conf: u32,
        member: MemberId,
        path: PathId,
        direction: Direction,
        payload: NetPayload,
    },
    /// An uplink packet cleared the conference's shared ingress
    /// bottleneck and reached the SFU.
    SfuIngress {
        conf: u32,
        member: MemberId,
        path: PathId,
        rtp: SimRtp,
    },
    /// A fan-out copy cleared the shared egress bottleneck and reached a
    /// viewer.
    SfuEgress {
        conf: u32,
        dest: MemberId,
        fwd: ForwardPacket,
    },
}

/// Ticks in the shared timer wheel. `Copy` and 8 bytes: idle sessions
/// cost exactly their wheel slots, nothing else.
#[derive(Debug, Clone, Copy)]
enum TickKind {
    Frame(u8),
    ReceiverRtcp,
    TransportRtcp,
    SenderRtcp,
    PacerPoll,
    Sbd,
}

#[derive(Debug, Clone, Copy)]
struct TimerEvent {
    conf: u32,
    member: MemberId,
    kind: TickKind,
}

/// Occupancy counters of one shard's shared machinery (satellite
/// telemetry: cheap reads of the high-water accessors, LinkStats-style).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// High-water mark of the shared event queue's payload arena.
    pub queue_high_water: usize,
    /// Timer-wheel load counters (pending high-water, cascades, overflow).
    pub wheel: TimerWheelStats,
    /// Conference batches this shard ran (work-stealing share).
    pub batches: u64,
}

/// One shard's reusable event machinery. A shard runs many conference
/// batches back to back; `reset` clears the queue and wheel but keeps
/// their allocations and high-water stats, so arenas are paid for once
/// per shard, not once per conference.
struct ShardCore {
    queue: EventQueue<FleetEvent>,
    wheel: TimerWheel<TimerEvent>,
    due: Vec<(SimTime, TimerEvent)>,
    paced: Vec<OutboundPacket>,
    batches: u64,
}

impl ShardCore {
    fn new() -> Self {
        ShardCore {
            queue: EventQueue::new(),
            wheel: TimerWheel::new(),
            due: Vec::new(),
            paced: Vec::new(),
            batches: 0,
        }
    }

    fn reset(&mut self) {
        self.queue.clear();
        self.wheel.clear();
        self.due.clear();
        self.paced.clear();
        self.batches += 1;
    }

    fn stats(&self) -> ShardStats {
        ShardStats {
            queue_high_water: self.queue.high_water(),
            wheel: self.wheel.stats(),
            batches: self.batches,
        }
    }
}

/// Horizon (in frames) behind the newest seen frame after which stale
/// viewer assembly entries are pruned; late retransmissions land well
/// inside one RTT (~3 frames).
const VIEWER_PRUNE_FRAMES: u64 = 30;

/// Viewer-side frame reassembly from fan-out descriptors. Each media
/// packet names its `index` of `count` within the frame, so completion is
/// exact: a dup-suppressing bitmap per in-flight frame, pruned behind a
/// fixed horizon so memory stays O(frames in flight), not O(call).
#[derive(Debug, Default)]
struct ViewerState {
    pkts: u64,
    bytes: u64,
    frames_complete: u64,
    /// (origin, stream, frame) → (received bitmap, packets in frame).
    /// `count == u16::MAX` marks an already-counted frame.
    asm: BTreeMap<(MemberId, u8, u64), (u128, u16)>,
    newest_frame: u64,
}

impl ViewerState {
    fn on_forward(&mut self, fwd: &ForwardPacket) {
        self.pkts += 1;
        self.bytes += fwd.size as u64;
        // Parameter-set packets (count == 0) carry no frame slice.
        if fwd.count == 0 || fwd.index as u32 >= 128 {
            return;
        }
        let entry = self
            .asm
            .entry((fwd.origin, fwd.stream, fwd.frame_id))
            .or_insert((0, fwd.count));
        let bit = 1u128 << fwd.index;
        if entry.1 != u16::MAX && entry.0 & bit == 0 {
            entry.0 |= bit;
            if entry.0.count_ones() as u16 >= entry.1 {
                self.frames_complete += 1;
                entry.1 = u16::MAX;
            }
        }
        if fwd.frame_id > self.newest_frame {
            self.newest_frame = fwd.frame_id;
            if self.asm.len() > 256 {
                let horizon = self.newest_frame.saturating_sub(VIEWER_PRUNE_FRAMES);
                self.asm.retain(|&(_, _, frame), _| frame >= horizon);
            }
        }
    }
}

/// One member's full session pipeline, minus the per-session event
/// machinery the shard provides.
struct SessionState {
    sender: ConferenceSender,
    receiver: ConferenceReceiver,
    paths: Vec<Path>,
    pacer: Pacer,
    metrics: Option<MetricsCollector>,
    sr_seen: BTreeMap<PathId, (u64, SimTime)>,
    trace: TraceHandle,
    ring: Option<Arc<RingSink>>,
    checker: Option<Arc<InvariantSink>>,
    /// Earliest armed pacer wake-up, to keep wheel entries deduplicated.
    pacer_wakeup: Option<SimTime>,
    viewer: ViewerState,
}

impl SessionState {
    fn poll_rtcp(&mut self, now: SimTime, include_transport: bool) -> Vec<(PathId, RtcpPacket)> {
        self.receiver.poll_rtcp_with(now, &self.sr_seen, include_transport)
    }
}

struct ConferenceState {
    members: Vec<SessionState>,
    sfu: SfuNode,
    sbd: Option<SbdDetector>,
    sbd_groups: Vec<Vec<usize>>,
    sbd_changes: u64,
    /// Conference-level trace (member 0's handle) for SBD group events.
    trace: TraceHandle,
}

/// Per-session slice of the fleet report.
#[derive(Debug, Clone)]
pub struct FleetSessionReport {
    /// Conference index.
    pub conf: u32,
    /// Member index within the conference.
    pub member: u16,
    /// Composite QoE score in [0, 1] (throughput, FPS, freeze).
    pub qoe: f64,
    /// Uplink decoded FPS at the SFU.
    pub fps: f64,
    /// Uplink delivered throughput, bps.
    pub throughput_bps: f64,
    /// Uplink frames decoded at the SFU.
    pub frames_decoded: u64,
    /// NACKed sequence numbers on the uplink.
    pub nacks_sent: u64,
    /// FEC packets used for recovery on the uplink.
    pub fec_packets_used: u64,
    /// Percent of the call the uplink was frozen.
    pub freeze_ratio_pct: f64,
    /// Fan-out packets this member received as a viewer.
    pub viewer_pkts: u64,
    /// Fan-out bytes this member received as a viewer.
    pub viewer_bytes: u64,
    /// Remote frames fully delivered to this member.
    pub viewer_frames: u64,
}

/// Per-conference slice of the fleet report.
#[derive(Debug, Clone)]
pub struct FleetConferenceReport {
    /// Conference index.
    pub conf: u32,
    /// SFU bottleneck counters (ingress/egress links, fan-out).
    pub sfu: SfuStats,
    /// Shared-bottleneck groups in the final applied grouping.
    pub sbd_groups: u32,
    /// Members in multi-member (coupled) groups.
    pub sbd_coupled: u32,
    /// Times the applied grouping changed during the call.
    pub sbd_changes: u64,
    /// Per-member session reports.
    pub sessions: Vec<FleetSessionReport>,
}

/// The result of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Total sessions simulated.
    pub sessions: usize,
    /// Members per conference.
    pub conference_size: usize,
    /// Worker shards used.
    pub shards: usize,
    /// Call duration.
    pub duration: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Per-conference reports, in conference-index order.
    pub conferences: Vec<FleetConferenceReport>,
    /// Per-shard occupancy stats (shard-count dependent; excluded from
    /// the deterministic fold).
    pub shard_stats: Vec<ShardStats>,
    /// Invariant violations across all armed members.
    pub violations: usize,
    /// Sampled `(label, jsonl)` timelines for traced conferences.
    pub sampled_traces: Vec<(String, String)>,
}

/// Nearest-rank-with-interpolation quantile of a sorted slice.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// The composite per-session QoE score: normalized throughput and FPS
/// (the paper's §6 normalizations) minus freeze penalty, clamped to
/// [0, 1]. Purely a function of the member's `CallReport`, so it is
/// identical for any shard count.
fn qoe_score(r: &CallReport) -> f64 {
    let tput = r.normalized_throughput().clamp(0.0, 1.0);
    let fps = r.normalized_fps().clamp(0.0, 1.0);
    let freeze = (r.freeze_ratio_pct() / 100.0).clamp(0.0, 1.0);
    (0.5 * tput + 0.35 * fps + 0.15 * (1.0 - freeze)).clamp(0.0, 1.0)
}

impl FleetReport {
    /// Per-session QoE scores in (conference, member) order.
    pub fn qoe_scores(&self) -> Vec<f64> {
        self.conferences
            .iter()
            .flat_map(|c| c.sessions.iter().map(|s| s.qoe))
            .collect()
    }

    /// QoE-fairness quantiles `[p5, p25, p50, p75, p95]`.
    pub fn qoe_quantiles(&self) -> [f64; 5] {
        let mut scores = self.qoe_scores();
        scores.sort_by(|a, b| a.partial_cmp(b).expect("finite QoE"));
        [0.05, 0.25, 0.50, 0.75, 0.95].map(|q| quantile_sorted(&scores, q))
    }

    /// The deterministic fold: per-conference aggregates merged in
    /// conference-index order plus fleet totals and QoE quantiles. No
    /// wall-clock and no shard-dependent counters — byte-identical for
    /// any shard count and any batch size.
    pub fn fold_text(&self) -> String {
        let mut out = String::with_capacity(64 + self.conferences.len() * 160);
        out.push_str(&format!(
            "fleet|sessions={}|size={}|seed={}|dur_us={}\n",
            self.sessions,
            self.conference_size,
            self.seed,
            self.duration.as_micros()
        ));
        let mut decoded = 0u64;
        let mut tput = 0.0f64;
        let mut nacks = 0u64;
        let mut fec = 0u64;
        let mut viewer_frames = 0u64;
        for c in &self.conferences {
            let cd: u64 = c.sessions.iter().map(|s| s.frames_decoded).sum();
            let ct: f64 = c.sessions.iter().map(|s| s.throughput_bps).sum();
            let cq: f64 =
                c.sessions.iter().map(|s| s.qoe).sum::<f64>() / c.sessions.len().max(1) as f64;
            let cv: u64 = c.sessions.iter().map(|s| s.viewer_frames).sum();
            decoded += cd;
            tput += ct;
            nacks += c.sessions.iter().map(|s| s.nacks_sent).sum::<u64>();
            fec += c.sessions.iter().map(|s| s.fec_packets_used).sum::<u64>();
            viewer_frames += cv;
            out.push_str(&format!(
                "c{}|decoded={}|tput_bps={:.3}|qoe={:.6}|viewer_frames={}|in_drops={}|eg_drops={}|fanout={}|groups={}|coupled={}|changes={}\n",
                c.conf,
                cd,
                ct,
                cq,
                cv,
                c.sfu.ingress.queue_drops,
                c.sfu.egress.queue_drops,
                c.sfu.fanout_pkts,
                c.sbd_groups,
                c.sbd_coupled,
                c.sbd_changes,
            ));
        }
        let q = self.qoe_quantiles();
        out.push_str(&format!(
            "total|decoded={decoded}|tput_bps={tput:.3}|nacks={nacks}|fec_used={fec}|viewer_frames={viewer_frames}\n"
        ));
        out.push_str(&format!(
            "qoe|p5={:.6}|p25={:.6}|p50={:.6}|p75={:.6}|p95={:.6}\n",
            q[0], q[1], q[2], q[3], q[4]
        ));
        out
    }
}

/// Per-run timing constants shared by the event handlers.
struct RunCtx {
    frame_interval: SimDuration,
    rtcp_interval: SimDuration,
    transport_rtcp_interval: SimDuration,
    end: SimTime,
    sbd: bool,
}

/// One conference's finished outcome as produced by a shard.
struct ConferenceOutcome {
    report: FleetConferenceReport,
    traces: Vec<(String, String)>,
    violations: usize,
}

/// The fleet engine: builds, runs, and folds a whole fleet.
pub struct FleetEngine {
    config: FleetConfig,
}

impl FleetEngine {
    /// Creates an engine for `config`.
    pub fn new(config: FleetConfig) -> Self {
        FleetEngine { config }
    }

    /// Runs the fleet to completion.
    ///
    /// # Panics
    /// Panics if `sessions` is zero.
    pub fn run(self) -> FleetReport {
        let cfg = self.config;
        assert!(cfg.sessions > 0, "a fleet needs at least one session");
        let n_conf = cfg.conference_count();
        let batch = cfg.batch_conferences.max(1);
        let n_batches = n_conf.div_ceil(batch);
        let shards = cfg.shards.max(1).min(n_batches);

        let mut outcomes: Vec<Option<Vec<ConferenceOutcome>>> = Vec::new();
        outcomes.resize_with(n_batches, || None);
        let mut shard_stats = Vec::new();

        if shards == 1 {
            let mut core = ShardCore::new();
            for (b, slot) in outcomes.iter_mut().enumerate() {
                let first = b * batch;
                let count = batch.min(n_conf - first);
                core.reset();
                *slot = Some(run_batch(&mut core, &cfg, first, count));
            }
            shard_stats.push(core.stats());
        } else {
            // One shard's claimed batches (tagged with their batch index
            // for the deterministic merge) plus its occupancy stats.
            type ShardYield = (Vec<(usize, Vec<ConferenceOutcome>)>, ShardStats);
            let next = AtomicUsize::new(0);
            let collected: Vec<ShardYield> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..shards)
                    .map(|_| {
                        s.spawn(|| {
                            let mut core = ShardCore::new();
                            let mut mine = Vec::new();
                            loop {
                                let b = next.fetch_add(1, Ordering::Relaxed);
                                if b >= n_batches {
                                    break;
                                }
                                let first = b * batch;
                                let count = batch.min(n_conf - first);
                                core.reset();
                                mine.push((b, run_batch(&mut core, &cfg, first, count)));
                            }
                            (mine, core.stats())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fleet shard panicked"))
                    .collect()
            });
            for (mine, stats) in collected {
                for (b, o) in mine {
                    outcomes[b] = Some(o);
                }
                shard_stats.push(stats);
            }
        }

        // Deterministic merge: conference-index order, regardless of
        // which shard ran which batch.
        let mut conferences = Vec::with_capacity(n_conf);
        let mut sampled_traces = Vec::new();
        let mut violations = 0;
        for slot in outcomes {
            for o in slot.expect("batch never ran") {
                conferences.push(o.report);
                sampled_traces.extend(o.traces);
                violations += o.violations;
            }
        }

        FleetReport {
            sessions: cfg.sessions,
            conference_size: cfg.conference_size,
            shards,
            duration: cfg.duration,
            seed: cfg.seed,
            conferences,
            shard_stats,
            violations,
            sampled_traces,
        }
    }
}

/// Builds one conference's state and schedules its initial timers.
fn build_conference(
    cfg: &FleetConfig,
    conf: u32,
    wheel: &mut TimerWheel<TimerEvent>,
) -> ConferenceState {
    let n_members = cfg.members_of(conf as usize);
    let format = converge_video::VideoFormat::HD720;
    let frame_interval = SimDuration::from_micros(1_000_000 / format.fps as u64);
    let mut sfu = SfuNode::new(SfuConfig::for_bottleneck(
        cfg.bottleneck_ingress_bps,
        n_members.saturating_sub(1),
    ));
    let sampled = (conf as usize) < cfg.trace_conferences;

    let mut members = Vec::with_capacity(n_members);
    for m in 0..n_members as MemberId {
        let seed = member_seed(cfg.seed, conf, m);
        let paths = member_paths(seed);
        let path_ids: Vec<PathId> = paths.iter().map(|p| p.id()).collect();
        sfu.register_member(&path_ids);

        let mut sender = ConferenceSender::new_sized(
            cfg.streams,
            &path_ids,
            cfg.scheduler.build(frame_interval),
            cfg.fec.build(),
            cfg.controller,
            cfg.max_encoding_rate_bps,
            SenderSizing::fleet(),
        );
        let mut receiver = ConferenceReceiver::new_sized(
            cfg.streams,
            &path_ids,
            format.fps,
            path_ids[0],
            FLEET_RECENT_SLOTS,
        );

        let ring = sampled.then(|| Arc::new(RingSink::new(4096)));
        let inner = match &ring {
            Some(r) => TraceHandle::new(r.clone() as Arc<dyn converge_trace::TraceSink>),
            None => TraceHandle::disabled(),
        };
        let (trace, checker) = if cfg.check_invariants {
            let checker = Arc::new(InvariantSink::wrapping(&inner));
            (TraceHandle::new(checker.clone()), Some(checker))
        } else {
            (inner, None)
        };
        sender.set_trace(trace.clone());
        receiver.set_trace(trace.clone());

        let metrics = MetricsCollector::new(
            cfg.duration,
            format,
            cfg.max_encoding_rate_bps,
            cfg.streams,
        );

        // Stagger every member's timers so frames across the fleet do not
        // land on the same wheel tick. Derived from the *global* member
        // index: identical for any shard count.
        let global = conf as u64 * cfg.conference_size as u64 + m as u64;
        let stagger = SimDuration::from_micros((global % 33) * 1_009);
        for s in 0..cfg.streams {
            wheel.schedule(
                SimTime::ZERO + stagger + SimDuration::from_micros(s as u64 * 3_000),
                TimerEvent { conf, member: m, kind: TickKind::Frame(s) },
            );
        }
        wheel.schedule(
            SimTime::from_millis(50) + stagger,
            TimerEvent { conf, member: m, kind: TickKind::ReceiverRtcp },
        );
        wheel.schedule(
            SimTime::from_millis(60) + stagger,
            TimerEvent { conf, member: m, kind: TickKind::TransportRtcp },
        );
        wheel.schedule(
            SimTime::from_millis(40) + stagger,
            TimerEvent { conf, member: m, kind: TickKind::SenderRtcp },
        );

        members.push(SessionState {
            sender,
            receiver,
            paths,
            pacer: Pacer::new(PacerConfig::default()),
            metrics: Some(metrics),
            sr_seen: BTreeMap::new(),
            trace,
            ring,
            checker,
            pacer_wakeup: None,
            viewer: ViewerState::default(),
        });
    }

    let sbd = cfg.sbd.then(|| SbdDetector::new(n_members, Default::default()));
    if let Some(d) = &sbd {
        wheel.schedule(
            SimTime::ZERO + d.interval() + SimDuration::from_micros((conf as u64 % 97) * 211),
            TimerEvent { conf, member: 0, kind: TickKind::Sbd },
        );
    }
    let trace = members[0].trace.clone();
    ConferenceState {
        members,
        sfu,
        sbd,
        sbd_groups: Vec::new(),
        sbd_changes: 0,
        trace,
    }
}

/// Runs conferences `[first, first + count)` through the shard's shared
/// queue and wheel, and finalizes their reports.
fn run_batch(
    core: &mut ShardCore,
    cfg: &FleetConfig,
    first: usize,
    count: usize,
) -> Vec<ConferenceOutcome> {
    let ShardCore { queue, wheel, due, paced, .. } = core;
    let mut confs: Vec<ConferenceState> = (0..count)
        .map(|i| build_conference(cfg, (first + i) as u32, wheel))
        .collect();

    let format = converge_video::VideoFormat::HD720;
    let ctx = RunCtx {
        frame_interval: SimDuration::from_micros(1_000_000 / format.fps as u64),
        rtcp_interval: SimDuration::from_millis(100),
        transport_rtcp_interval: SimDuration::from_millis(250),
        end: SimTime::ZERO + cfg.duration,
        sbd: cfg.sbd,
    };

    let mut clock = SimTime::ZERO;
    loop {
        let now = match (queue.peek_time(), wheel.next_deadline()) {
            (Some(q), Some(w)) => q.min(w),
            (Some(q), None) => q,
            (None, Some(w)) => w,
            (None, None) => break,
        };
        let now = now.max(clock);
        clock = now;
        if now >= ctx.end {
            break;
        }
        // Phase-structured processing at `now`: drain queue events, then
        // due wheel ticks, and repeat until neither has work. Every
        // conference's own subsequence runs in (time, seq) order, so the
        // interleaving with *other* conferences — the only thing that
        // changes with shard count — cannot alter its state.
        loop {
            let mut progressed = false;
            while let Some((at, ev)) = queue.pop_due(now) {
                progressed = true;
                process_event(queue, &mut confs, first as u32, &ctx, at, ev);
            }
            wheel.pop_due_into(now, due);
            for (at, te) in due.drain(..) {
                progressed = true;
                process_timer(queue, wheel, paced, &mut confs, first as u32, &ctx, at, te);
            }
            if !progressed {
                break;
            }
        }
    }

    confs
        .into_iter()
        .enumerate()
        .map(|(i, c)| finalize_conference((first + i) as u32, c))
        .collect()
}

fn finalize_conference(conf: u32, c: ConferenceState) -> ConferenceOutcome {
    let mut sessions = Vec::with_capacity(c.members.len());
    let mut traces = Vec::new();
    let mut violations = 0;
    let sfu = c.sfu.stats();
    for (m, member) in c.members.into_iter().enumerate() {
        let report = member.metrics.expect("metrics live until finalize").finish();
        sessions.push(FleetSessionReport {
            conf,
            member: m as u16,
            qoe: qoe_score(&report),
            fps: report.fps,
            throughput_bps: report.throughput_bps,
            frames_decoded: report.frames_decoded,
            nacks_sent: report.nacks_sent,
            fec_packets_used: report.fec_packets_used,
            freeze_ratio_pct: report.freeze_ratio_pct(),
            viewer_pkts: member.viewer.pkts,
            viewer_bytes: member.viewer.bytes,
            viewer_frames: member.viewer.frames_complete,
        });
        if let Some(ring) = member.ring {
            let label = format!("fleet/c{conf}/m{m}");
            let doc = jsonl::render(&label, &ring.drain());
            traces.push((label, doc));
        }
        if let Some(checker) = member.checker {
            violations += checker.take_violations().len();
        }
    }
    ConferenceOutcome {
        report: FleetConferenceReport {
            conf,
            sfu,
            sbd_groups: c.sbd_groups.len() as u32,
            sbd_coupled: c
                .sbd_groups
                .iter()
                .filter(|g| g.len() > 1)
                .map(|g| g.len())
                .sum::<usize>() as u32,
            sbd_changes: c.sbd_changes,
            sessions,
        },
        traces,
        violations,
    }
}

/// Offers `payload` to one of `m`'s private paths and schedules the
/// delivery (and any impairment duplicate). Returns true when the packet
/// was lost.
#[allow(clippy::too_many_arguments)]
fn send_private(
    queue: &mut EventQueue<FleetEvent>,
    m: &mut SessionState,
    conf: u32,
    member: MemberId,
    now: SimTime,
    path: PathId,
    direction: Direction,
    payload: NetPayload,
) -> bool {
    let size = payload.wire_size();
    let p = m
        .paths
        .iter_mut()
        .find(|p| p.id() == path)
        .unwrap_or_else(|| panic!("send on unknown {path}"));
    let offer = p.offer(direction, now, size);
    match offer.fate {
        Transmit::Delivered(at) => {
            // Original before the copy, mirroring the emulator's FIFO
            // tie-break.
            let dup = offer.duplicate.map(|copy_at| (copy_at, payload.clone()));
            queue.schedule(at, FleetEvent::Deliver { conf, member, path, direction, payload });
            if let Some((copy_at, copy)) = dup {
                queue.schedule(
                    copy_at,
                    FleetEvent::Deliver { conf, member, path, direction, payload: copy },
                );
            }
            false
        }
        _ => true,
    }
}

/// Re-arms the member's pacer wake-up if its next release is earlier than
/// anything already armed.
fn arm_pacer(
    wheel: &mut TimerWheel<TimerEvent>,
    m: &mut SessionState,
    conf: u32,
    member: MemberId,
    now: SimTime,
) {
    if let Some(r) = m.pacer.next_release() {
        let r = r.max(now);
        if m.pacer_wakeup.is_none_or(|w| r < w) {
            wheel.schedule(r, TimerEvent { conf, member, kind: TickKind::PacerPoll });
            m.pacer_wakeup = Some(r);
        }
    }
}

/// Mirrors `Session::record_receiver_event` for a fleet member.
fn record_receiver_event(
    metrics: &mut MetricsCollector,
    trace: &TraceHandle,
    now: SimTime,
    ev: ReceiverEvent,
) {
    match ev {
        ReceiverEvent::FrameDecoded { stream, at, e2e } => {
            trace.emit(
                now,
                TraceEvent::FrameDecoded { stream: stream.0, e2e_us: e2e.as_micros() },
            );
            if let Some(gap) = metrics.on_frame_decoded(stream, at, e2e) {
                trace.emit(now, TraceEvent::FrameFrozen { gap_us: gap.as_micros() });
            }
        }
        ReceiverEvent::FrameDropped { stream, .. } => {
            trace.emit(now, TraceEvent::FrameDropped { stream: stream.0 });
            metrics.on_frame_dropped(now);
        }
        ReceiverEvent::Ifd { at, ifd } => metrics.on_ifd(at, ifd),
        ReceiverEvent::Fcd { at, fcd } => metrics.on_fcd(at, fcd),
        ReceiverEvent::FecRecovered => metrics.on_fec_used(),
        ReceiverEvent::FecReceived => metrics.on_fec_received(),
    }
}

fn process_event(
    queue: &mut EventQueue<FleetEvent>,
    confs: &mut [ConferenceState],
    base: u32,
    ctx: &RunCtx,
    now: SimTime,
    ev: FleetEvent,
) {
    match ev {
        FleetEvent::Deliver { conf, member, path, direction, payload } => {
            let ConferenceState { members, sfu, sbd, .. } = &mut confs[(conf - base) as usize];
            let m = &mut members[member as usize];
            match (direction, payload) {
                (Direction::Forward, NetPayload::Rtp(rtp)) => {
                    // The uplink packet reached the conference edge: it
                    // now contends for the shared ingress bottleneck.
                    let size = rtp.kind.wire_size();
                    match sfu.offer_ingress(member, now, size) {
                        Transmit::Delivered(at) => {
                            queue.schedule(at, FleetEvent::SfuIngress { conf, member, path, rtp });
                        }
                        _ => {
                            m.metrics
                                .as_mut()
                                .expect("metrics live during run")
                                .on_packet_lost(path);
                            if ctx.sbd {
                                if let Some(d) = sbd {
                                    d.on_loss(member as usize);
                                }
                            }
                        }
                    }
                }
                (Direction::Forward, NetPayload::Rtcp(rtcp)) => {
                    // Control plane bypasses the media bottleneck (the SFU
                    // prioritizes its control queue).
                    match &rtcp {
                        RtcpPacket::SenderReport(sr) => {
                            m.sr_seen.insert(PathId(sr.path_id), (sr.ntp_micros / 1_000, now));
                        }
                        RtcpPacket::Sdes(sdes) => {
                            if let Some(fr) = sdes.frame_rate {
                                m.receiver.on_sdes_frame_rate(fr as u32);
                            }
                        }
                        _ => {}
                    }
                }
                (Direction::Reverse, NetPayload::Rtcp(rtcp)) => {
                    let metrics = m.metrics.as_mut().expect("metrics live during run");
                    if let RtcpPacket::Nack(ref n) = rtcp {
                        metrics.on_nack_sent(n.lost.len());
                        m.trace.emit(
                            now,
                            TraceEvent::NackSent { path, packets: n.lost.len() as u32 },
                        );
                    }
                    if matches!(rtcp, RtcpPacket::Pli(_)) {
                        metrics.on_keyframe_request();
                    }
                    m.sender.on_rtcp(now, &rtcp);
                }
                (Direction::Reverse, NetPayload::ProbeEcho { probe_seq, .. }) => {
                    m.sender.on_probe_echo(now, probe_seq);
                }
                (Direction::Forward, NetPayload::ProbeEcho { .. })
                | (Direction::Reverse, NetPayload::Rtp(_)) => {}
            }
        }
        FleetEvent::SfuIngress { conf, member, path, rtp } => {
            let ConferenceState { members, sfu, sbd, .. } = &mut confs[(conf - base) as usize];
            let n_members = members.len();
            let m = &mut members[member as usize];
            // Probes are echoed straight back over the member's own
            // reverse path.
            if let RtpKind::Probe { probe_seq } = rtp.kind {
                let echo = NetPayload::ProbeEcho { probe_seq, probe_sent_at: rtp.sent_at };
                send_private(queue, m, conf, member, now, path, Direction::Reverse, echo);
            }
            let media_payload = match &rtp.kind {
                RtpKind::Media(p) if p.kind.is_media() => p.size,
                RtpKind::Retransmission(p) if p.kind.is_media() => p.size,
                _ => 0,
            };
            let metrics = m.metrics.as_mut().expect("metrics live during run");
            metrics.on_packet_received(now, path, media_payload);
            if ctx.sbd {
                if let Some(d) = sbd {
                    d.on_owd_sample(member as usize, rtp.sent_at, now);
                }
            }
            for ev in m.receiver.on_rtp(now, &rtp) {
                record_receiver_event(
                    m.metrics.as_mut().expect("metrics live during run"),
                    &m.trace,
                    now,
                    ev,
                );
            }
            // Fan the media out to every other member over the shared
            // egress bottleneck: descriptors only, never payload bytes.
            if let Some(vp) = rtp.kind.video_packet() {
                let (index, count) = match vp.kind {
                    PacketKind::Media { index, count } => (index, count),
                    // Parameter sets are forwarded (they cost egress
                    // bandwidth) but carry no frame slice.
                    _ => (0, 0),
                };
                let fwd = ForwardPacket {
                    origin: member,
                    stream: vp.stream.0,
                    frame_id: vp.frame_id,
                    index,
                    count,
                    size: vp.size as u32,
                    sent_at: rtp.sent_at,
                    keyframe: matches!(vp.frame_type, FrameType::Key),
                };
                for dest in 0..n_members as MemberId {
                    if dest == member {
                        continue;
                    }
                    if let Transmit::Delivered(at) = sfu.offer_egress(now, fwd.size as usize) {
                        queue.schedule(at, FleetEvent::SfuEgress { conf, dest, fwd });
                    }
                }
            }
        }
        FleetEvent::SfuEgress { conf, dest, fwd } => {
            confs[(conf - base) as usize].members[dest as usize].viewer.on_forward(&fwd);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn process_timer(
    queue: &mut EventQueue<FleetEvent>,
    wheel: &mut TimerWheel<TimerEvent>,
    paced: &mut Vec<OutboundPacket>,
    confs: &mut [ConferenceState],
    base: u32,
    ctx: &RunCtx,
    now: SimTime,
    te: TimerEvent,
) {
    let TimerEvent { conf, member, kind } = te;
    let cs = &mut confs[(conf - base) as usize];
    match kind {
        TickKind::Frame(stream) => {
            let m = &mut cs.members[member as usize];
            let result = m.sender.on_frame_tick(now, stream as usize);
            m.metrics
                .as_mut()
                .expect("metrics live during run")
                .on_frame_encoded(now, result.qp, result.height);
            for pm in m.sender.path_metrics() {
                m.pacer.set_rate(pm.id, pm.rate_bps as f64);
            }
            m.pacer.enqueue(now, result.packets);
            wheel.schedule(
                now + ctx.frame_interval,
                TimerEvent { conf, member, kind: TickKind::Frame(stream) },
            );
            arm_pacer(wheel, m, conf, member, now);
        }
        TickKind::PacerPoll => {
            let m = &mut cs.members[member as usize];
            if m.pacer_wakeup == Some(now) {
                m.pacer_wakeup = None;
            }
            m.pacer.poll_into(now, paced);
            for out in paced.drain(..) {
                let size = out.payload.wire_size();
                let is_fec = out.class == PacketClass::Fec;
                let is_media = matches!(
                    &out.payload,
                    NetPayload::Rtp(r) if r.kind.video_packet().is_some()
                );
                let metrics = m.metrics.as_mut().expect("metrics live during run");
                metrics.on_packet_sent(now, out.path, size, is_fec, is_media);
                if out.class == PacketClass::Retransmission {
                    metrics.on_retransmission();
                    m.trace.emit(now, TraceEvent::Retransmitted { path: out.path });
                }
                let lost = send_private(
                    queue,
                    m,
                    conf,
                    member,
                    now,
                    out.path,
                    Direction::Forward,
                    out.payload,
                );
                if lost {
                    m.metrics
                        .as_mut()
                        .expect("metrics live during run")
                        .on_packet_lost(out.path);
                }
            }
            arm_pacer(wheel, m, conf, member, now);
        }
        TickKind::ReceiverRtcp => {
            let m = &mut cs.members[member as usize];
            for (path, rtcp) in m.poll_rtcp(now, false) {
                let payload = NetPayload::Rtcp(rtcp);
                send_private(queue, m, conf, member, now, path, Direction::Reverse, payload);
            }
            wheel.schedule(
                now + ctx.rtcp_interval,
                TimerEvent { conf, member, kind: TickKind::ReceiverRtcp },
            );
        }
        TickKind::TransportRtcp => {
            let m = &mut cs.members[member as usize];
            for (path, rtcp) in m.poll_rtcp(now, true) {
                let payload = NetPayload::Rtcp(rtcp);
                send_private(queue, m, conf, member, now, path, Direction::Reverse, payload);
            }
            wheel.schedule(
                now + ctx.transport_rtcp_interval,
                TimerEvent { conf, member, kind: TickKind::TransportRtcp },
            );
        }
        TickKind::SenderRtcp => {
            let m = &mut cs.members[member as usize];
            for (path, rtcp) in m.sender.periodic_rtcp(now) {
                let payload = NetPayload::Rtcp(rtcp);
                send_private(queue, m, conf, member, now, path, Direction::Forward, payload);
            }
            wheel.schedule(
                now + SimDuration::from_millis(500),
                TimerEvent { conf, member, kind: TickKind::SenderRtcp },
            );
        }
        TickKind::Sbd => {
            let ConferenceState { members, sbd, sbd_groups, sbd_changes, trace, .. } = cs;
            if let Some(d) = sbd {
                d.close_interval();
                if d.intervals_closed() >= SBD_WARMUP_INTERVALS {
                    let groups = d.groups();
                    if groups != *sbd_groups {
                        let scales = d.increase_scales();
                        for (i, m) in members.iter_mut().enumerate() {
                            m.sender.set_increase_scale_all(scales[i]);
                        }
                        let coupled: usize =
                            groups.iter().filter(|g| g.len() > 1).map(|g| g.len()).sum();
                        trace.emit(
                            now,
                            TraceEvent::SbdGroupsChanged {
                                flows: members.len() as u32,
                                groups: groups.len() as u32,
                                coupled: coupled as u32,
                            },
                        );
                        *sbd_groups = groups;
                        *sbd_changes += 1;
                    }
                }
                wheel.schedule(
                    now + d.interval(),
                    TimerEvent { conf, member: 0, kind: TickKind::Sbd },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FleetConfig {
        let mut cfg = FleetConfig::new(9, 3);
        cfg.duration = SimDuration::from_secs(6);
        cfg.batch_conferences = 1;
        cfg.trace_conferences = 1;
        cfg.seed = 42;
        cfg
    }

    #[test]
    fn fleet_members_decode_frames_and_fan_out() {
        let report = FleetEngine::new(small_cfg()).run();
        assert_eq!(report.conferences.len(), 3);
        for c in &report.conferences {
            assert_eq!(c.sessions.len(), 3);
            for s in &c.sessions {
                assert!(s.fps > 10.0, "c{} m{} fps {}", s.conf, s.member, s.fps);
                assert!(s.qoe > 0.0 && s.qoe <= 1.0, "qoe {}", s.qoe);
                assert!(s.viewer_pkts > 0, "viewers must receive fan-out");
                assert!(s.viewer_frames > 0, "viewers must complete frames");
            }
            assert!(c.sfu.fanout_pkts > 0);
            assert!(c.sfu.ingress.delivered_pkts > 0);
        }
    }

    #[test]
    fn fold_is_identical_across_shard_counts() {
        let base = FleetEngine::new(small_cfg()).run();
        for shards in [2, 3] {
            let mut cfg = small_cfg();
            cfg.shards = shards;
            let sharded = FleetEngine::new(cfg).run();
            assert_eq!(base.fold_text(), sharded.fold_text(), "shards={shards}");
            assert_eq!(base.sampled_traces, sharded.sampled_traces, "shards={shards}");
        }
    }

    #[test]
    fn repeated_runs_are_identical() {
        let mut cfg = small_cfg();
        cfg.shards = 2;
        let a = FleetEngine::new(cfg.clone()).run();
        let b = FleetEngine::new(cfg).run();
        assert_eq!(a.fold_text(), b.fold_text());
        assert_eq!(a.sampled_traces, b.sampled_traces);
    }

    #[test]
    fn batch_size_does_not_change_the_fold() {
        let base = FleetEngine::new(small_cfg()).run();
        let mut cfg = small_cfg();
        cfg.batch_conferences = 8;
        let batched = FleetEngine::new(cfg).run();
        assert_eq!(base.fold_text(), batched.fold_text());
    }

    #[test]
    fn invariants_hold_across_the_fleet() {
        let mut cfg = small_cfg();
        cfg.check_invariants = true;
        let report = FleetEngine::new(cfg).run();
        assert_eq!(report.violations, 0);
    }

    #[test]
    fn tight_bottleneck_couples_members() {
        // Three 2 Mbps members into a 3 Mbps ingress: a standing queue all
        // members share, which SBD should group.
        let mut cfg = FleetConfig::new(3, 3);
        cfg.duration = SimDuration::from_secs(12);
        cfg.bottleneck_ingress_bps = 3_000_000;
        cfg.seed = 7;
        let report = FleetEngine::new(cfg).run();
        let c = &report.conferences[0];
        assert!(
            c.sbd_coupled >= 2,
            "expected a coupled group, got groups={} coupled={} changes={}",
            c.sbd_groups,
            c.sbd_coupled,
            c.sbd_changes
        );
    }

    #[test]
    fn shard_stats_report_occupancy() {
        let report = FleetEngine::new(small_cfg()).run();
        assert_eq!(report.shard_stats.len(), 1);
        let st = &report.shard_stats[0];
        assert!(st.queue_high_water > 0);
        assert!(st.wheel.high_water > 0);
        assert_eq!(st.batches, 3);
    }

    #[test]
    fn qoe_quantiles_are_ordered() {
        let report = FleetEngine::new(small_cfg()).run();
        let q = report.qoe_quantiles();
        for w in q.windows(2) {
            assert!(w[0] <= w[1], "{q:?}");
        }
        assert!(q[0] > 0.0);
    }
}
