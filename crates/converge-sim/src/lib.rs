//! # converge-sim
//!
//! End-to-end simulated conference calls for the Converge (SIGCOMM 2023)
//! reproduction: a sender (encoders, pluggable per-path congestion control
//! behind [`CongestionController`], pluggable scheduler and FEC policy) and
//! a receiver (packet/frame buffers, FEC recovery, NACK, PLI, QoE feedback)
//! wired over the deterministic multipath emulator, plus the metrics the
//! paper's evaluation reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod drives;
pub mod duplex;
pub mod fleet;
pub mod metrics;
pub mod pacer;
pub mod payload;
pub mod receiver;
pub mod scenarios;
pub mod sender;
pub mod session;
pub mod wire;

pub use converge_cc::{
    CongestionController, ControllerConfig, ControllerKind, MpBbrConfig, MpBbrController,
    NadaConfig, NadaController,
};
pub use drives::DriveFixture;
pub use duplex::DuplexSession;
pub use fleet::{
    FleetConferenceReport, FleetConfig, FleetEngine, FleetReport, FleetSessionReport, ShardStats,
};
pub use metrics::{CallReport, MetricsCollector, PathCounters, SecondBin};
pub use pacer::{Pacer, PacerConfig};
pub use payload::{NetPayload, RtpKind, SimRtp};
pub use receiver::ConferenceReceiver;
pub use scenarios::{
    DriveLoadError, FecKind, ImpairmentKind, PathSpec, ScenarioConfig, SchedulerKind,
};
pub use sender::{ConferenceSender, FrameTickResult, OutboundPacket, RateCoupling};
pub use session::{ConfigError, Session, SessionConfig, SessionConfigBuilder};
