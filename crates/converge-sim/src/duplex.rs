//! Bidirectional (duplex) conference calls.
//!
//! A real conference sends media both ways: endpoint A's media travels the
//! forward direction while endpoint B's media travels the reverse — which
//! means B's media now *contends* with A's feedback on the reverse links,
//! a dynamic the one-way [`crate::Session`] cannot exhibit. The duplex
//! session runs a full sender+receiver at each endpoint over the same
//! emulated paths and reports one [`CallReport`] per direction.

use std::collections::BTreeMap;

use converge_core::PacketClass;
use converge_net::{
    event::EventQueue, Direction, LinkConfig, NetworkEmulator, Path, PathId, SimDuration, SimTime,
};
use converge_rtp::RtcpPacket;

use crate::metrics::{CallReport, MetricsCollector};
use crate::pacer::{Pacer, PacerConfig};
use crate::payload::{NetPayload, RtpKind};
use crate::receiver::{ConferenceReceiver, ReceiverEvent};
use crate::scenarios::ScenarioConfig;
use crate::sender::ConferenceSender;
use crate::session::SessionConfig;

/// One endpoint's machinery.
struct Endpoint {
    sender: ConferenceSender,
    receiver: ConferenceReceiver,
    pacer: Pacer,
    metrics: MetricsCollector,
    /// SRs seen from the far end: path → (send ms, arrival).
    sr_seen: BTreeMap<PathId, (u64, SimTime)>,
    /// Direction this endpoint's media travels.
    tx_dir: Direction,
}

/// Timer events of the duplex loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tick {
    /// (endpoint index, stream index) frame capture.
    Frame(usize, usize),
    /// Endpoint's receiver fast-RTCP round.
    FastRtcp(usize),
    /// Endpoint's receiver transport-RTCP round.
    TransportRtcp(usize),
    /// Endpoint's sender SR/SDES round.
    SenderRtcp(usize),
}

/// A bidirectional session between two Converge endpoints.
pub struct DuplexSession {
    config: SessionConfig,
}

impl DuplexSession {
    /// Creates a duplex session; both directions use the scenario's path
    /// characteristics symmetrically (unlike the one-way session, whose
    /// reverse links are feedback-only and deliberately uncongested).
    pub fn new(config: SessionConfig) -> Self {
        DuplexSession { config }
    }

    fn build_symmetric_paths(scenario: &ScenarioConfig, seed: u64) -> Vec<Path> {
        scenario
            .paths
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let cfg = LinkConfig {
                    rate: spec.rate.clone(),
                    propagation: spec.propagation,
                    queue_capacity_bytes: spec.queue_bytes,
                    loss: spec.loss.clone(),
                    jitter: spec.jitter,
                    discipline: spec.discipline.clone(),
                    seed: seed.wrapping_add(i as u64 * 7919),
                    impairment: spec.forward_impairment,
                    drive: spec.drive.clone(),
                };
                let mut rev = cfg.clone();
                rev.seed = cfg.seed.wrapping_add(0xB1D1);
                rev.impairment = spec.reverse_impairment;
                Path::new(PathId(i as u8), cfg, rev)
            })
            .collect()
    }

    /// Runs the call; returns `(a_to_b, b_to_a)` reports.
    pub fn run(self) -> (CallReport, CallReport) {
        let cfg = self.config;
        let paths = Self::build_symmetric_paths(&cfg.scenario, cfg.seed);
        let path_ids: Vec<PathId> = paths.iter().map(|p| p.id()).collect();
        let mut emu: NetworkEmulator<NetPayload> = NetworkEmulator::new(paths);

        let format = converge_video::VideoFormat::HD720;
        let frame_interval = SimDuration::from_micros(1_000_000 / format.fps as u64);
        let mut endpoints: Vec<Endpoint> = [Direction::Forward, Direction::Reverse]
            .into_iter()
            .map(|tx_dir| Endpoint {
                sender: ConferenceSender::new(
                    cfg.streams,
                    &path_ids,
                    cfg.scheduler.build(frame_interval),
                    cfg.fec.build(),
                    cfg.controller,
                    cfg.max_encoding_rate_bps,
                ),
                receiver: ConferenceReceiver::new(cfg.streams, &path_ids, format.fps, path_ids[0]),
                pacer: Pacer::new(PacerConfig::default()),
                metrics: MetricsCollector::new(
                    cfg.duration,
                    format,
                    cfg.max_encoding_rate_bps,
                    cfg.streams,
                ),
                sr_seen: BTreeMap::new(),
                tx_dir,
            })
            .collect();

        let mut timers: EventQueue<Tick> = EventQueue::new();
        for (ep, offset) in [(0usize, 0u64), (1, 16_000)] {
            for s in 0..cfg.streams as usize {
                timers.schedule(
                    SimTime::from_micros(offset + s as u64 * 3_000),
                    Tick::Frame(ep, s),
                );
            }
            timers.schedule(SimTime::from_micros(50_000 + offset), Tick::FastRtcp(ep));
            timers.schedule(
                SimTime::from_micros(60_000 + offset),
                Tick::TransportRtcp(ep),
            );
            timers.schedule(SimTime::from_micros(40_000 + offset), Tick::SenderRtcp(ep));
        }

        let end = SimTime::ZERO + cfg.duration;
        let mut clock = SimTime::ZERO;

        // Reused across iterations so the steady-state loop allocates
        // nothing for polling.
        let mut paced: Vec<crate::sender::OutboundPacket> = Vec::new();
        let mut deliveries: Vec<converge_net::Delivery<NetPayload>> = Vec::new();

        loop {
            // When neither pacer holds a packet and nothing is in flight,
            // the only possible event source is a timer: jump straight
            // there (same fast path as the one-way session).
            let idle = cfg.idle_skip
                && emu.idle()
                && endpoints.iter().all(|e| e.pacer.is_empty());
            let now = if idle {
                match timers.peek_time() {
                    Some(t) => t,
                    None => break,
                }
            } else {
                let pacer_next = endpoints
                    .iter()
                    .filter_map(|e| e.pacer.next_release())
                    .min();
                match [timers.peek_time(), emu.next_arrival(), pacer_next]
                    .into_iter()
                    .flatten()
                    .min()
                {
                    Some(t) => t,
                    None => break,
                }
            };
            // The pacer reports a stale (past) `busy_until` for a path that
            // went idle and was re-filled; clamp so simulated time never
            // runs backwards.
            let now = now.max(clock);
            clock = now;
            if now >= end {
                break;
            }

            // Paced transmissions (idle pacers release nothing).
            if !idle {
                for ep in endpoints.iter_mut() {
                    let tx_dir = ep.tx_dir;
                    ep.pacer.poll_into(now, &mut paced);
                    for out in paced.drain(..) {
                        let size = out.payload.wire_size();
                        let is_fec = out.class == PacketClass::Fec;
                        let is_media = matches!(
                            &out.payload,
                            NetPayload::Rtp(r) if r.kind.video_packet().is_some()
                        );
                        ep.metrics.on_packet_sent(now, out.path, size, is_fec, is_media);
                        if out.class == PacketClass::Retransmission {
                            ep.metrics.on_retransmission();
                        }
                        let (outcome, _) = emu.send(out.path, tx_dir, now, size, out.payload);
                        if outcome.is_lost() {
                            ep.metrics.on_packet_lost(out.path);
                        }
                    }
                }
            }

            // Deliveries: direction determines the receiving endpoint's
            // role. Endpoint 0 transmits Forward, so Forward deliveries are
            // handled by endpoint 1 (as receiver) — except feedback-class
            // RTCP, which endpoint 1 emitted toward endpoint 0's sender? No:
            // every payload an endpoint emits (media, SR, feedback) travels
            // its OWN tx direction; the far endpoint dispatches by type.
            if !idle {
                emu.poll_into(now, &mut deliveries);
            }
            for delivery in deliveries.drain(..) {
                let to_ep = match delivery.direction {
                    Direction::Forward => 1,
                    Direction::Reverse => 0,
                };
                Self::dispatch(
                    &mut endpoints[to_ep],
                    now,
                    delivery.path,
                    delivery.payload,
                    &mut emu,
                );
            }

            while let Some((_, tick)) = timers.pop_due(now) {
                match tick {
                    Tick::Frame(ep_idx, stream_idx) => {
                        let result = endpoints[ep_idx].sender.on_frame_tick(now, stream_idx);
                        endpoints[ep_idx]
                            .metrics
                            .on_frame_encoded(now, result.qp, result.height);
                        let rates = endpoints[ep_idx].sender.path_metrics();
                        for m in rates {
                            endpoints[ep_idx].pacer.set_rate(m.id, m.rate_bps as f64);
                        }
                        endpoints[ep_idx].pacer.enqueue(now, result.packets);
                        timers.schedule(now + frame_interval, Tick::Frame(ep_idx, stream_idx));
                    }
                    Tick::FastRtcp(ep_idx) => {
                        Self::emit_rtcp(&mut endpoints[ep_idx], now, false, &mut emu);
                        timers.schedule(now + cfg.rtcp_interval, Tick::FastRtcp(ep_idx));
                    }
                    Tick::TransportRtcp(ep_idx) => {
                        Self::emit_rtcp(&mut endpoints[ep_idx], now, true, &mut emu);
                        timers.schedule(
                            now + cfg.transport_rtcp_interval,
                            Tick::TransportRtcp(ep_idx),
                        );
                    }
                    Tick::SenderRtcp(ep_idx) => {
                        let tx_dir = endpoints[ep_idx].tx_dir;
                        for (path, rtcp) in endpoints[ep_idx].sender.periodic_rtcp(now) {
                            let payload = NetPayload::Rtcp(rtcp);
                            let size = payload.wire_size();
                            emu.send(path, tx_dir, now, size, payload);
                        }
                        timers.schedule(
                            now + SimDuration::from_millis(500),
                            Tick::SenderRtcp(ep_idx),
                        );
                    }
                }
            }
        }

        let mut reports = endpoints.into_iter().map(|e| e.metrics.finish());
        let a = reports.next().expect("endpoint A");
        let b = reports.next().expect("endpoint B");
        (a, b)
    }

    /// Handles one arriving payload at `ep` (media for its receiver,
    /// SR/SDES for its receiver's clock, feedback for its sender).
    fn dispatch(
        ep: &mut Endpoint,
        now: SimTime,
        path: PathId,
        payload: NetPayload,
        emu: &mut NetworkEmulator<NetPayload>,
    ) {
        match payload {
            NetPayload::Rtp(rtp) => {
                if let RtpKind::Probe { probe_seq } = rtp.kind {
                    // Echo back toward the prober (the opposite of our tx
                    // direction is where it came from; reply on our own tx).
                    let echo = NetPayload::ProbeEcho {
                        probe_seq,
                        probe_sent_at: rtp.sent_at,
                    };
                    let size = echo.wire_size();
                    emu.send(path, ep.tx_dir, now, size, echo);
                }
                let media_payload = match &rtp.kind {
                    RtpKind::Media(p) if p.kind.is_media() => p.size,
                    RtpKind::Retransmission(p) if p.kind.is_media() => p.size,
                    _ => 0,
                };
                ep.metrics.on_packet_received(now, path, media_payload);
                let events = ep.receiver.on_rtp(now, &rtp);
                for ev in events {
                    match ev {
                        ReceiverEvent::FrameDecoded { stream, at, e2e } => {
                            ep.metrics.on_frame_decoded(stream, at, e2e);
                        }
                        ReceiverEvent::FrameDropped { .. } => ep.metrics.on_frame_dropped(now),
                        ReceiverEvent::Ifd { at, ifd } => ep.metrics.on_ifd(at, ifd),
                        ReceiverEvent::Fcd { at, fcd } => ep.metrics.on_fcd(at, fcd),
                        ReceiverEvent::FecRecovered => ep.metrics.on_fec_used(),
                        ReceiverEvent::FecReceived => ep.metrics.on_fec_received(),
                    }
                }
            }
            NetPayload::Rtcp(rtcp) => match &rtcp {
                RtcpPacket::SenderReport(sr) => {
                    ep.sr_seen
                        .insert(PathId(sr.path_id), (sr.ntp_micros / 1_000, now));
                }
                RtcpPacket::Sdes(sdes) => {
                    if let Some(fr) = sdes.frame_rate {
                        ep.receiver.on_sdes_frame_rate(fr as u32);
                    }
                }
                _ => {
                    if let RtcpPacket::Nack(n) = &rtcp {
                        ep.metrics.on_nack_sent(n.lost.len());
                    }
                    if matches!(rtcp, RtcpPacket::Pli(_)) {
                        ep.metrics.on_keyframe_request();
                    }
                    ep.sender.on_rtcp(now, &rtcp);
                }
            },
            NetPayload::ProbeEcho { probe_seq, .. } => {
                ep.sender.on_probe_echo(now, probe_seq);
            }
        }
    }

    fn emit_rtcp(
        ep: &mut Endpoint,
        now: SimTime,
        include_transport: bool,
        emu: &mut NetworkEmulator<NetPayload>,
    ) {
        let batch = ep
            .receiver
            .poll_rtcp_with(now, &ep.sr_seen, include_transport);
        for (path, rtcp) in batch {
            let payload = NetPayload::Rtcp(rtcp);
            let size = payload.wire_size();
            emu.send(path, ep.tx_dir, now, size, payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{FecKind, SchedulerKind};

    fn duplex_config(rate_bps: u64, secs: u64) -> SessionConfig {
        let mut scenario = ScenarioConfig::fec_tradeoff(0.0);
        for p in &mut scenario.paths {
            p.rate = converge_net::RateTrace::constant(rate_bps);
        }
        SessionConfig::builder()
            .scenario(scenario)
            .scheduler(SchedulerKind::Converge)
            .fec(FecKind::Converge)
            .streams(1)
            .duration(converge_net::SimDuration::from_secs(secs))
            .seed(17)
            .build()
            .expect("valid session config")
    }

    #[test]
    fn both_directions_deliver_video() {
        let (a, b) = DuplexSession::new(duplex_config(15_000_000, 20)).run();
        assert!(a.fps > 20.0, "A→B fps {}", a.fps);
        assert!(b.fps > 20.0, "B→A fps {}", b.fps);
        assert!(a.throughput_bps > 2_000_000.0);
        assert!(b.throughput_bps > 2_000_000.0);
    }

    #[test]
    fn directions_share_the_path_fairly() {
        let (a, b) = DuplexSession::new(duplex_config(15_000_000, 20)).run();
        let ratio = a.throughput_bps / b.throughput_bps;
        assert!(
            (0.5..2.0).contains(&ratio),
            "direction starvation: {:.2} vs {:.2} Mbps",
            a.throughput_bps / 1e6,
            b.throughput_bps / 1e6
        );
    }

    #[test]
    fn duplex_contention_costs_vs_one_way() {
        // The same scenario one-way: the duplex directions see RTCP +
        // reverse media contention and cannot beat the one-way call.
        let (a, _) = DuplexSession::new(duplex_config(15_000_000, 20)).run();
        let one_way = crate::Session::new(duplex_config(15_000_000, 20)).run();
        assert!(
            a.throughput_bps <= one_way.throughput_bps * 1.1,
            "duplex {:.2} should not exceed one-way {:.2}",
            a.throughput_bps / 1e6,
            one_way.throughput_bps / 1e6
        );
    }

    #[test]
    fn deterministic() {
        let (a1, b1) = DuplexSession::new(duplex_config(15_000_000, 10)).run();
        let (a2, b2) = DuplexSession::new(duplex_config(15_000_000, 10)).run();
        assert_eq!(a1.frames_decoded, a2.frames_decoded);
        assert_eq!(b1.frames_decoded, b2.frames_decoded);
        assert_eq!(a1.throughput_bps, a2.throughput_bps);
    }
}
