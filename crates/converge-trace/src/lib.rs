//! Deterministic structured tracing for the Converge stack.
//!
//! Every control decision the paper plots over time — scheduler splits,
//! Eq. 2 α adjustments, Eq. 3 path disable/re-enable, FEC β updates, GCC
//! state and rate changes, connection-monitor edges, QoE feedback
//! emission, NACK/retransmit, and frame decode/drop/freeze — is a typed
//! [`TraceEvent`] stamped with the [`SimTime`] it happened at. Components
//! emit through a [`TraceHandle`], a cheaply cloneable reference to a
//! [`TraceSink`]; the default handle is disabled and emitting through it
//! is a single branch with no allocation, so instrumented hot paths cost
//! nothing when tracing is off.
//!
//! Because the simulator is a pure function of configuration × seed, the
//! event stream of a run is fully deterministic: serializing it with
//! [`jsonl`] yields byte-identical timelines no matter how many worker
//! threads the surrounding sweep uses.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use converge_net::{PathId, SimTime};

pub mod invariant;
pub mod jsonl;
pub mod timeline;

pub use invariant::{InvariantConfig, InvariantSink, Violation};

/// Congestion-controller usage signal, mirroring GCC's overuse detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GccUsage {
    /// Queues draining: the path can take more.
    Underuse,
    /// Stable delay.
    Normal,
    /// Queues building: back off.
    Overuse,
}

impl GccUsage {
    /// Canonical lowercase label used in the JSONL encoding.
    pub fn label(self) -> &'static str {
        match self {
            GccUsage::Underuse => "underuse",
            GccUsage::Normal => "normal",
            GccUsage::Overuse => "overuse",
        }
    }
}

/// Which congestion-control algorithm a controller-agnostic event came
/// from. GCC keeps its legacy `Gcc*` events for byte-stable timelines;
/// the pluggable controllers emit `Cc*` events tagged with this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAlgorithm {
    /// Google Congestion Control (delay trendline + loss, AIMD).
    Gcc,
    /// NADA (RFC 8698): unified congestion signal + PI controller.
    Nada,
    /// Multipath-tuned BBR: bandwidth/RTT probing with pacing-gain cycling.
    MpBbr,
}

impl CcAlgorithm {
    /// Canonical lowercase label used in the JSONL encoding.
    pub fn label(self) -> &'static str {
        match self {
            CcAlgorithm::Gcc => "gcc",
            CcAlgorithm::Nada => "nada",
            CcAlgorithm::MpBbr => "mp-bbr",
        }
    }
}

/// Operating phase of a pluggable congestion controller. NADA alternates
/// between `RampUp` and `Gradual` (RFC 8698 §4.2); BBR walks
/// `Startup → Drain → ProbeBw` with periodic `ProbeRtt` dips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcPhase {
    /// NADA accelerated ramp-up (loss-free, empty queue).
    RampUp,
    /// NADA gradual PI update.
    Gradual,
    /// BBR startup: exponential bandwidth search.
    Startup,
    /// BBR drain: bleed the startup queue.
    Drain,
    /// BBR steady-state bandwidth probing.
    ProbeBw,
    /// BBR RTT re-probe: back off to re-measure the propagation floor.
    ProbeRtt,
}

impl CcPhase {
    /// Canonical lowercase label used in the JSONL encoding.
    pub fn label(self) -> &'static str {
        match self {
            CcPhase::RampUp => "ramp_up",
            CcPhase::Gradual => "gradual",
            CcPhase::Startup => "startup",
            CcPhase::Drain => "drain",
            CcPhase::ProbeBw => "probe_bw",
            CcPhase::ProbeRtt => "probe_rtt",
        }
    }
}

/// Connection-monitor link state, mirroring `converge-signal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Recent activity.
    Up,
    /// Silent past the suspect threshold.
    Suspect,
    /// Silent past the down threshold.
    Down,
}

impl LinkState {
    /// Canonical lowercase label used in the JSONL encoding.
    pub fn label(self) -> &'static str {
        match self {
            LinkState::Up => "up",
            LinkState::Suspect => "suspect",
            LinkState::Down => "down",
        }
    }
}

/// One structured event from the stack. All payloads are `Copy` integers
/// so constructing an event never allocates — the disabled-trace fast
/// path stays allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The scheduler assigned `packets` media packets to `path` in one
    /// batch split (Eq. 1 share plus the path's Eq. 2 offset).
    SplitDecision {
        /// Path the packets were assigned to.
        path: PathId,
        /// Media packets assigned in this batch.
        packets: u32,
        /// The path's current Eq. 2 α offset.
        offset: i64,
    },
    /// The completion-time fast path moved to `path` (Algorithm 1).
    FastPathSwitched {
        /// The new fast path.
        path: PathId,
    },
    /// A QoE feedback α was folded into a path's share offset (Eq. 2).
    AlphaAdjusted {
        /// Path the feedback named.
        path: PathId,
        /// Signed α from the feedback packet.
        alpha: i64,
        /// The path's offset after applying α.
        offset: i64,
    },
    /// The scheduler disabled a path whose share reached zero (Eq. 3
    /// precondition), remembering the FCD at disable time.
    PathDisabled {
        /// The disabled path.
        path: PathId,
        /// Frame-completion delay recorded for the re-enable test, µs.
        fcd_us: u64,
    },
    /// A probe passed the Eq. 3 test and re-enabled the path:
    /// `(rtt_fast − rtt_i)/2 ≤ max(FCD, 5 ms)`.
    PathReenabled {
        /// The re-enabled path.
        path: PathId,
        /// The computed margin `|rtt_fast − rtt_i|/2`, µs.
        margin_us: u64,
        /// The threshold it was compared against, µs.
        threshold_us: u64,
    },
    /// The FEC controller changed a path's β or repair budget
    /// (`FEC_i = l_i × P_i × β`, β capped at 3).
    FecUpdated {
        /// Path the FEC applies to.
        path: PathId,
        /// β in thousandths (1000 = 1.0).
        beta_milli: u32,
        /// Media packets in the protected batch.
        media: u32,
        /// Repair packets generated for the batch.
        repair: u32,
    },
    /// GCC's overuse detector changed state on a path.
    GccStateChanged {
        /// Path whose controller changed state.
        path: PathId,
        /// New detector state.
        usage: GccUsage,
    },
    /// GCC's target rate for a path changed.
    GccRateChanged {
        /// Path whose target moved.
        path: PathId,
        /// New target rate, bits per second.
        rate_bps: u64,
    },
    /// A pluggable congestion controller changed phase on a path
    /// (controller-agnostic counterpart of [`TraceEvent::GccStateChanged`]).
    CcStateChanged {
        /// Path whose controller changed phase.
        path: PathId,
        /// Which algorithm is driving the path.
        algorithm: CcAlgorithm,
        /// The phase it entered.
        phase: CcPhase,
    },
    /// A pluggable congestion controller's target rate for a path changed
    /// (controller-agnostic counterpart of [`TraceEvent::GccRateChanged`];
    /// subject to the same rate-clamp invariant).
    CcRateChanged {
        /// Path whose target moved.
        path: PathId,
        /// Which algorithm is driving the path.
        algorithm: CcAlgorithm,
        /// New target rate, bits per second.
        rate_bps: u64,
    },
    /// The connection monitor moved a path between up/suspect/down.
    MonitorEdge {
        /// Path whose liveness state changed.
        path: PathId,
        /// New liveness state.
        state: LinkState,
    },
    /// The receiver emitted a QoE feedback packet (§4.2).
    FeedbackEmitted {
        /// Path the feedback blames or credits.
        path: PathId,
        /// Signed α (late-packet count in the offending direction).
        alpha: i64,
        /// Frame-completion delay reported alongside, µs.
        fcd_us: u64,
    },
    /// The receiver requested retransmission of lost packets.
    NackSent {
        /// Path the NACK traveled on.
        path: PathId,
        /// Sequence numbers requested.
        packets: u32,
    },
    /// The sender retransmitted a packet.
    Retransmitted {
        /// Path carrying the retransmission.
        path: PathId,
    },
    /// A frame completed and was decoded.
    FrameDecoded {
        /// Camera stream index.
        stream: u8,
        /// End-to-end latency capture→decode, µs.
        e2e_us: u64,
    },
    /// A frame was abandoned by the receiver.
    FrameDropped {
        /// Camera stream index.
        stream: u8,
    },
    /// Playback froze: the inter-frame gap exceeded the freeze threshold.
    FrameFrozen {
        /// The observed gap, µs.
        gap_us: u64,
    },
    /// The RFC 8382 shared-bottleneck detector re-partitioned a fleet's
    /// flows and rescaled the coupled controllers' additive increase.
    SbdGroupsChanged {
        /// Flows the detector currently tracks.
        flows: u32,
        /// Shared-bottleneck groups found (singletons excluded).
        groups: u32,
        /// Flows inside some group (increase scaled to 1/group size).
        coupled: u32,
    },
}

impl TraceEvent {
    /// Canonical snake_case event name used in the JSONL encoding.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::SplitDecision { .. } => "split_decision",
            TraceEvent::FastPathSwitched { .. } => "fast_path_switched",
            TraceEvent::AlphaAdjusted { .. } => "alpha_adjusted",
            TraceEvent::PathDisabled { .. } => "path_disabled",
            TraceEvent::PathReenabled { .. } => "path_reenabled",
            TraceEvent::FecUpdated { .. } => "fec_updated",
            TraceEvent::GccStateChanged { .. } => "gcc_state_changed",
            TraceEvent::GccRateChanged { .. } => "gcc_rate_changed",
            TraceEvent::CcStateChanged { .. } => "cc_state_changed",
            TraceEvent::CcRateChanged { .. } => "cc_rate_changed",
            TraceEvent::MonitorEdge { .. } => "monitor_edge",
            TraceEvent::FeedbackEmitted { .. } => "feedback_emitted",
            TraceEvent::NackSent { .. } => "nack_sent",
            TraceEvent::Retransmitted { .. } => "retransmitted",
            TraceEvent::FrameDecoded { .. } => "frame_decoded",
            TraceEvent::FrameDropped { .. } => "frame_dropped",
            TraceEvent::FrameFrozen { .. } => "frame_frozen",
            TraceEvent::SbdGroupsChanged { .. } => "sbd_groups_changed",
        }
    }
}

/// A [`TraceEvent`] stamped with the simulation time it happened at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the event.
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// Receives trace records. Implementations use interior mutability so a
/// single sink can be shared by every component of a session.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Accepts one record.
    fn record(&self, record: TraceRecord);

    /// Whether records are observed at all. Handles skip event
    /// construction entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The no-op sink: drops everything and reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _record: TraceRecord) {}

    fn enabled(&self) -> bool {
        false
    }
}

#[derive(Debug, Default)]
struct RingState {
    buf: VecDeque<TraceRecord>,
    dropped: u64,
}

/// A bounded ring-buffer sink: keeps the most recent `capacity` records,
/// counting the ones it had to evict.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    state: Mutex<RingState>,
}

impl RingSink {
    /// A ring holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            state: Mutex::new(RingState::default()),
        }
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.state.lock().expect("ring lock").buf.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("ring lock").dropped
    }

    /// Takes every buffered record, oldest first, leaving the ring empty.
    pub fn drain(&self) -> Vec<TraceRecord> {
        let mut state = self.state.lock().expect("ring lock");
        state.buf.drain(..).collect()
    }
}

impl TraceSink for RingSink {
    fn record(&self, record: TraceRecord) {
        let mut state = self.state.lock().expect("ring lock");
        if state.buf.len() == self.capacity {
            state.buf.pop_front();
            state.dropped += 1;
        }
        state.buf.push_back(record);
    }
}

/// A cheaply cloneable reference to a sink, or nothing. Every
/// instrumented component holds one; the default is disabled.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    sink: Option<Arc<dyn TraceSink>>,
}

impl TraceHandle {
    /// The disabled handle: emitting through it is a branch and nothing
    /// else.
    pub fn disabled() -> Self {
        TraceHandle::default()
    }

    /// A handle delivering to `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        TraceHandle { sink: Some(sink) }
    }

    /// Whether emitted events are observed. Hot paths with non-trivial
    /// event construction should check this first.
    pub fn is_enabled(&self) -> bool {
        self.sink.as_ref().is_some_and(|s| s.enabled())
    }

    /// Emits one event at `at`. No-op (and allocation-free) when the
    /// handle is disabled.
    pub fn emit(&self, at: SimTime, event: TraceEvent) {
        if let Some(sink) = &self.sink {
            if sink.enabled() {
                sink.record(TraceRecord { at, event });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_us: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_micros(at_us),
            event: TraceEvent::FastPathSwitched { path: PathId(0) },
        }
    }

    #[test]
    fn disabled_handle_drops_everything() {
        let handle = TraceHandle::disabled();
        assert!(!handle.is_enabled());
        handle.emit(
            SimTime::ZERO,
            TraceEvent::FrameFrozen { gap_us: 1 },
        );
    }

    #[test]
    fn null_sink_reports_disabled() {
        let handle = TraceHandle::new(Arc::new(NullSink));
        assert!(!handle.is_enabled());
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(rec(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let drained = ring.drain();
        assert_eq!(drained[0].at, SimTime::from_micros(2));
        assert_eq!(drained[2].at, SimTime::from_micros(4));
        assert!(ring.is_empty());
    }

    #[test]
    fn handle_delivers_to_ring() {
        let ring = Arc::new(RingSink::new(16));
        let handle = TraceHandle::new(ring.clone());
        assert!(handle.is_enabled());
        handle.emit(
            SimTime::from_millis(5),
            TraceEvent::AlphaAdjusted {
                path: PathId(1),
                alpha: -3,
                offset: -7,
            },
        );
        let drained = ring.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(
            drained[0].event,
            TraceEvent::AlphaAdjusted {
                path: PathId(1),
                alpha: -3,
                offset: -7,
            }
        );
    }
}
