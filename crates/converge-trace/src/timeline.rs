//! Post-processor turning a record stream into a per-path timeline
//! summary: when each path was disabled, how its Eq. 2 α offset moved,
//! and how FEC β ramped — the quantities the paper's Fig. 11/Table 4
//! ablation reads off its time-series plots.

use std::collections::BTreeMap;

use converge_net::{PathId, SimTime};

use crate::{TraceEvent, TraceRecord};

#[derive(Debug, Default)]
struct PathTimeline {
    disable_intervals: Vec<(SimTime, Option<SimTime>)>,
    alpha: Vec<(SimTime, i64, i64)>,
    beta_milli: Vec<(SimTime, u32)>,
    feedback: u32,
    reenable_margins_us: Vec<u64>,
}

fn secs(t: SimTime) -> f64 {
    t.as_micros() as f64 / 1e6
}

/// Renders the per-path summary of a timeline, paths in id order. The
/// output is deterministic for a deterministic record stream.
pub fn summarize(records: &[TraceRecord]) -> String {
    let mut paths: BTreeMap<PathId, PathTimeline> = BTreeMap::new();
    let mut end = SimTime::ZERO;
    for rec in records {
        end = end.max(rec.at);
        match rec.event {
            TraceEvent::PathDisabled { path, .. } => {
                paths
                    .entry(path)
                    .or_default()
                    .disable_intervals
                    .push((rec.at, None));
            }
            TraceEvent::PathReenabled {
                path, margin_us, ..
            } => {
                let tl = paths.entry(path).or_default();
                if let Some(last) = tl.disable_intervals.last_mut() {
                    if last.1.is_none() {
                        last.1 = Some(rec.at);
                    }
                }
                tl.reenable_margins_us.push(margin_us);
            }
            TraceEvent::AlphaAdjusted {
                path,
                alpha,
                offset,
            } => {
                paths
                    .entry(path)
                    .or_default()
                    .alpha
                    .push((rec.at, alpha, offset));
            }
            TraceEvent::FecUpdated {
                path, beta_milli, ..
            } => {
                let tl = paths.entry(path).or_default();
                if tl.beta_milli.last().map(|&(_, b)| b) != Some(beta_milli) {
                    tl.beta_milli.push((rec.at, beta_milli));
                }
            }
            TraceEvent::FeedbackEmitted { path, .. } => {
                paths.entry(path).or_default().feedback += 1;
            }
            _ => {}
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "# per-path timeline summary ({} events, {:.1}s)\n",
        records.len(),
        secs(end)
    ));
    if paths.is_empty() {
        out.push_str("# no per-path control events\n");
        return out;
    }
    for (path, tl) in &paths {
        out.push_str(&format!("{path}:\n"));

        if tl.disable_intervals.is_empty() {
            out.push_str("  disabled: never\n");
        } else {
            let mut total = 0.0;
            let mut spans = String::new();
            for &(from, to) in &tl.disable_intervals {
                let until = to.unwrap_or(end);
                total += secs(until) - secs(from);
                match to {
                    Some(t) => spans.push_str(&format!(" [{:.1}s..{:.1}s]", secs(from), secs(t))),
                    None => spans.push_str(&format!(" [{:.1}s..end]", secs(from))),
                }
            }
            out.push_str(&format!(
                "  disabled: {} interval(s), {:.1}s total:{}\n",
                tl.disable_intervals.len(),
                total,
                spans
            ));
        }

        if tl.alpha.is_empty() {
            out.push_str("  alpha: no adjustments\n");
        } else {
            let min = tl.alpha.iter().map(|&(_, _, o)| o).min().unwrap_or(0);
            let max = tl.alpha.iter().map(|&(_, _, o)| o).max().unwrap_or(0);
            let last = tl.alpha.last().map(|&(_, _, o)| o).unwrap_or(0);
            out.push_str(&format!(
                "  alpha: {} adjustment(s), offset range [{min}, {max}], final {last}\n",
                tl.alpha.len()
            ));
        }

        if tl.beta_milli.is_empty() {
            out.push_str("  beta: no FEC updates\n");
        } else {
            let peak = tl.beta_milli.iter().map(|&(_, b)| b).max().unwrap_or(1000);
            let last = tl.beta_milli.last().map(|&(_, b)| b).unwrap_or(1000);
            out.push_str(&format!(
                "  beta: {} change(s), peak {:.3}, final {:.3}\n",
                tl.beta_milli.len(),
                peak as f64 / 1000.0,
                last as f64 / 1000.0
            ));
        }

        if tl.feedback > 0 {
            out.push_str(&format!("  qoe_feedback: {} packet(s)\n", tl.feedback));
        }
        if !tl.reenable_margins_us.is_empty() {
            let worst = tl.reenable_margins_us.iter().copied().max().unwrap_or(0);
            out.push_str(&format!(
                "  reenable: {} probe pass(es), max margin {:.1}ms\n",
                tl.reenable_margins_us.len(),
                worst as f64 / 1000.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn empty_stream_summarizes() {
        let s = summarize(&[]);
        assert!(s.contains("0 events"));
        assert!(s.contains("no per-path control events"));
    }

    #[test]
    fn disable_interval_is_paired_with_reenable() {
        let records = vec![
            TraceRecord {
                at: at(30_000),
                event: TraceEvent::PathDisabled {
                    path: PathId(1),
                    fcd_us: 8_000,
                },
            },
            TraceRecord {
                at: at(90_000),
                event: TraceEvent::PathReenabled {
                    path: PathId(1),
                    margin_us: 2_000,
                    threshold_us: 8_000,
                },
            },
        ];
        let s = summarize(&records);
        assert!(s.contains("path1:"), "{s}");
        assert!(s.contains("1 interval(s), 60.0s total: [30.0s..90.0s]"), "{s}");
        assert!(s.contains("reenable: 1 probe pass(es)"), "{s}");
    }

    #[test]
    fn open_interval_runs_to_end() {
        let records = vec![
            TraceRecord {
                at: at(10_000),
                event: TraceEvent::PathDisabled {
                    path: PathId(0),
                    fcd_us: 5_000,
                },
            },
            TraceRecord {
                at: at(40_000),
                event: TraceEvent::FrameFrozen { gap_us: 1 },
            },
        ];
        let s = summarize(&records);
        assert!(s.contains("[10.0s..end]"), "{s}");
        assert!(s.contains("30.0s total"), "{s}");
    }

    #[test]
    fn alpha_and_beta_histories_fold() {
        let records = vec![
            TraceRecord {
                at: at(1_000),
                event: TraceEvent::AlphaAdjusted {
                    path: PathId(0),
                    alpha: -4,
                    offset: -4,
                },
            },
            TraceRecord {
                at: at(2_000),
                event: TraceEvent::AlphaAdjusted {
                    path: PathId(0),
                    alpha: -6,
                    offset: -10,
                },
            },
            TraceRecord {
                at: at(2_500),
                event: TraceEvent::FecUpdated {
                    path: PathId(0),
                    beta_milli: 1_000,
                    media: 10,
                    repair: 1,
                },
            },
            TraceRecord {
                at: at(3_000),
                event: TraceEvent::FecUpdated {
                    path: PathId(0),
                    beta_milli: 1_400,
                    media: 10,
                    repair: 2,
                },
            },
            TraceRecord {
                at: at(3_500),
                event: TraceEvent::FecUpdated {
                    path: PathId(0),
                    beta_milli: 1_400,
                    media: 12,
                    repair: 2,
                },
            },
        ];
        let s = summarize(&records);
        assert!(
            s.contains("alpha: 2 adjustment(s), offset range [-10, -4], final -10"),
            "{s}"
        );
        // The repeated 1.4 β is deduplicated.
        assert!(s.contains("beta: 2 change(s), peak 1.400, final 1.400"), "{s}");
    }
}
