//! A trace-driven invariant checker for the Converge control loop.
//!
//! [`InvariantSink`] is a [`TraceSink`] tee: it checks every record against
//! the machine-verifiable invariants of the paper's control loop, then
//! forwards the record unchanged to an optional inner sink. Arm it around
//! any existing trace pipeline and a run doubles as a correctness oracle —
//! chaos scenarios in particular assert [`InvariantSink::is_clean`] after
//! the call ends.
//!
//! Checked invariants (paper references in parentheses):
//!
//! 1. **Monotone time** — record timestamps never decrease. The simulator
//!    is a discrete-event loop; time running backwards means event-queue
//!    corruption.
//! 2. **No traffic on disabled paths** — after `PathDisabled`, no
//!    `SplitDecision` may assign packets to that path until
//!    `PathReenabled` (Eq. 3 lifecycle; shares are non-negative by type,
//!    and "splits sum to *n*" is covered by the property tests since the
//!    batch size is not in the trace).
//! 3. **Eq. 3 re-enable margin** — `PathReenabled` must carry
//!    `margin_us ≤ threshold_us`, i.e. `(rtt_fast − rtt_i)/2 ≤
//!    max(FCD, 5 ms)` actually held when the scheduler re-enabled.
//! 4. **FEC bounds** — `FecUpdated` must satisfy `repair ≤ media`
//!    (`FEC_i ≤ P_i`) and `1 ≤ β ≤ β_max` (§4.3 caps β at 3).
//! 5. **Rate clamps** — `GccRateChanged` and the controller-agnostic
//!    `CcRateChanged` stay within the configured floor/ceiling (every
//!    pluggable controller clamps to `[50 kbps, 30 Mbps]` by default).
//!
//! To add an invariant: extend [`State`] with whatever bookkeeping the
//! rule needs, add the check in [`check_record`], and give the rule a
//! stable `rule` label — violations are reported as data, so new rules
//! need no changes anywhere else.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use converge_net::PathId;

use crate::{SimTime, TraceEvent, TraceHandle, TraceRecord, TraceSink};

/// One invariant violation observed in a trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Simulation time of the offending record.
    pub at: SimTime,
    /// Stable label of the violated rule.
    pub rule: &'static str,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.rule, self.detail)
    }
}

/// Bounds the checker enforces. Defaults mirror the stack's GCC clamps
/// and the paper's β cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvariantConfig {
    /// Minimum legal GCC target rate, bits per second.
    pub rate_floor_bps: u64,
    /// Maximum legal GCC target rate, bits per second.
    pub rate_ceiling_bps: u64,
    /// Maximum legal FEC β in thousandths (3000 = the paper's cap of 3).
    pub beta_max_milli: u32,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        InvariantConfig {
            rate_floor_bps: 50_000,
            rate_ceiling_bps: 30_000_000,
            beta_max_milli: 3_000,
        }
    }
}

/// Mutable bookkeeping the rules need across records.
#[derive(Debug, Default)]
struct State {
    last_at: Option<SimTime>,
    disabled: BTreeSet<PathId>,
    violations: Vec<Violation>,
}

/// A checking tee: validates every record, forwards it to an optional
/// inner sink, and accumulates [`Violation`]s for inspection after the
/// run.
#[derive(Debug)]
pub struct InvariantSink {
    config: InvariantConfig,
    inner: Option<Arc<dyn TraceSink>>,
    state: Mutex<State>,
}

impl InvariantSink {
    /// A standalone checker with default bounds and no inner sink.
    pub fn new() -> Self {
        InvariantSink::with_config(InvariantConfig::default())
    }

    /// A standalone checker with explicit bounds.
    pub fn with_config(config: InvariantConfig) -> Self {
        InvariantSink {
            config,
            inner: None,
            state: Mutex::new(State::default()),
        }
    }

    /// A checker that tees every record into whatever sink `handle`
    /// carries (if any), so tracing output is unchanged by arming the
    /// checker.
    pub fn wrapping(handle: &TraceHandle) -> Self {
        InvariantSink {
            config: InvariantConfig::default(),
            inner: handle.sink.clone(),
            state: Mutex::new(State::default()),
        }
    }

    /// Violations observed so far (cloned).
    pub fn violations(&self) -> Vec<Violation> {
        self.state.lock().expect("invariant lock").violations.clone()
    }

    /// Takes all observed violations, leaving the sink clean.
    pub fn take_violations(&self) -> Vec<Violation> {
        std::mem::take(&mut self.state.lock().expect("invariant lock").violations)
    }

    /// Whether no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.state.lock().expect("invariant lock").violations.is_empty()
    }
}

impl Default for InvariantSink {
    fn default() -> Self {
        InvariantSink::new()
    }
}

impl TraceSink for InvariantSink {
    fn record(&self, record: TraceRecord) {
        {
            let mut state = self.state.lock().expect("invariant lock");
            check_record(&record, &self.config, &mut state);
        }
        if let Some(inner) = &self.inner {
            if inner.enabled() {
                inner.record(record);
            }
        }
    }
}

/// Applies every rule to one record, mutating `state`.
fn check_record(record: &TraceRecord, config: &InvariantConfig, state: &mut State) {
    let at = record.at;
    if let Some(last) = state.last_at {
        if at < last {
            state.violations.push(Violation {
                at,
                rule: "monotone-time",
                detail: format!("timestamp {at} precedes previous record at {last}"),
            });
        }
    }
    state.last_at = Some(state.last_at.map_or(at, |last| last.max(at)));

    match record.event {
        TraceEvent::SplitDecision { path, packets, .. }
            if packets > 0 && state.disabled.contains(&path) =>
        {
            state.violations.push(Violation {
                at,
                rule: "no-traffic-on-disabled-path",
                detail: format!("{packets} packets scheduled on disabled {path}"),
            });
        }
        TraceEvent::PathDisabled { path, .. } => {
            state.disabled.insert(path);
        }
        TraceEvent::PathReenabled {
            path,
            margin_us,
            threshold_us,
        } => {
            if margin_us > threshold_us {
                state.violations.push(Violation {
                    at,
                    rule: "eq3-reenable-margin",
                    detail: format!(
                        "{path} re-enabled with margin {margin_us} us > threshold {threshold_us} us"
                    ),
                });
            }
            state.disabled.remove(&path);
        }
        TraceEvent::FecUpdated {
            path,
            beta_milli,
            media,
            repair,
        } => {
            if repair > media {
                state.violations.push(Violation {
                    at,
                    rule: "fec-repair-within-batch",
                    detail: format!("{path}: repair {repair} exceeds media {media}"),
                });
            }
            if beta_milli < 1_000 {
                state.violations.push(Violation {
                    at,
                    rule: "fec-beta-floor",
                    detail: format!("{path}: beta {beta_milli}/1000 below 1.0"),
                });
            }
            if beta_milli > config.beta_max_milli {
                state.violations.push(Violation {
                    at,
                    rule: "fec-beta-cap",
                    detail: format!(
                        "{path}: beta {beta_milli}/1000 exceeds cap {}/1000",
                        config.beta_max_milli
                    ),
                });
            }
        }
        TraceEvent::GccRateChanged { path, rate_bps }
            if rate_bps < config.rate_floor_bps || rate_bps > config.rate_ceiling_bps =>
        {
            state.violations.push(Violation {
                at,
                rule: "gcc-rate-clamp",
                detail: format!(
                    "{path}: rate {rate_bps} bps outside [{}, {}]",
                    config.rate_floor_bps, config.rate_ceiling_bps
                ),
            });
        }
        TraceEvent::CcRateChanged {
            path,
            algorithm,
            rate_bps,
        } if rate_bps < config.rate_floor_bps || rate_bps > config.rate_ceiling_bps => {
            state.violations.push(Violation {
                at,
                rule: "cc-rate-clamp",
                detail: format!(
                    "{path} ({}): rate {rate_bps} bps outside [{}, {}]",
                    algorithm.label(),
                    config.rate_floor_bps,
                    config.rate_ceiling_bps
                ),
            });
        }
        _ => {}
    }
}

/// Replays an already-captured record slice through the rules, for
/// offline checking of stored timelines (e.g. the bench runner's traced
/// mode or a parsed JSONL file).
pub fn check_records(records: &[TraceRecord], config: InvariantConfig) -> Vec<Violation> {
    let mut state = State::default();
    for record in records {
        check_record(record, &config, &mut state);
    }
    state.violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RingSink;

    fn rec(at_us: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_micros(at_us),
            event,
        }
    }

    #[test]
    fn clean_stream_reports_clean() {
        let sink = InvariantSink::new();
        sink.record(rec(
            1,
            TraceEvent::SplitDecision {
                path: PathId(0),
                packets: 5,
                offset: 0,
            },
        ));
        sink.record(rec(
            2,
            TraceEvent::GccRateChanged {
                path: PathId(0),
                rate_bps: 1_000_000,
            },
        ));
        assert!(sink.is_clean());
        assert!(sink.violations().is_empty());
    }

    #[test]
    fn backwards_time_flagged() {
        let sink = InvariantSink::new();
        sink.record(rec(10, TraceEvent::FastPathSwitched { path: PathId(0) }));
        sink.record(rec(5, TraceEvent::FastPathSwitched { path: PathId(1) }));
        let v = sink.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "monotone-time");
    }

    #[test]
    fn split_on_disabled_path_flagged() {
        let sink = InvariantSink::new();
        sink.record(rec(
            1,
            TraceEvent::PathDisabled {
                path: PathId(1),
                fcd_us: 8_000,
            },
        ));
        sink.record(rec(
            2,
            TraceEvent::SplitDecision {
                path: PathId(1),
                packets: 3,
                offset: 0,
            },
        ));
        // Zero-packet splits on a disabled path are legal bookkeeping.
        sink.record(rec(
            3,
            TraceEvent::SplitDecision {
                path: PathId(1),
                packets: 0,
                offset: 0,
            },
        ));
        let v = sink.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-traffic-on-disabled-path");
    }

    #[test]
    fn reenable_clears_disabled_and_checks_margin() {
        let sink = InvariantSink::new();
        sink.record(rec(
            1,
            TraceEvent::PathDisabled {
                path: PathId(1),
                fcd_us: 8_000,
            },
        ));
        sink.record(rec(
            2,
            TraceEvent::PathReenabled {
                path: PathId(1),
                margin_us: 4_000,
                threshold_us: 8_000,
            },
        ));
        sink.record(rec(
            3,
            TraceEvent::SplitDecision {
                path: PathId(1),
                packets: 3,
                offset: 0,
            },
        ));
        assert!(sink.is_clean());

        sink.record(rec(
            4,
            TraceEvent::PathReenabled {
                path: PathId(0),
                margin_us: 9_000,
                threshold_us: 8_000,
            },
        ));
        let v = sink.take_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "eq3-reenable-margin");
        assert!(sink.is_clean());
    }

    #[test]
    fn fec_bounds_enforced() {
        let sink = InvariantSink::new();
        sink.record(rec(
            1,
            TraceEvent::FecUpdated {
                path: PathId(0),
                beta_milli: 1_500,
                media: 10,
                repair: 4,
            },
        ));
        assert!(sink.is_clean());
        sink.record(rec(
            2,
            TraceEvent::FecUpdated {
                path: PathId(0),
                beta_milli: 900,
                media: 10,
                repair: 11,
            },
        ));
        sink.record(rec(
            3,
            TraceEvent::FecUpdated {
                path: PathId(0),
                beta_milli: 3_500,
                media: 10,
                repair: 0,
            },
        ));
        let rules: Vec<_> = sink.violations().iter().map(|v| v.rule).collect();
        assert_eq!(
            rules,
            vec!["fec-repair-within-batch", "fec-beta-floor", "fec-beta-cap"]
        );
    }

    #[test]
    fn gcc_rate_clamp_enforced() {
        let sink = InvariantSink::new();
        sink.record(rec(
            1,
            TraceEvent::GccRateChanged {
                path: PathId(0),
                rate_bps: 49_999,
            },
        ));
        sink.record(rec(
            2,
            TraceEvent::GccRateChanged {
                path: PathId(0),
                rate_bps: 30_000_001,
            },
        ));
        sink.record(rec(
            3,
            TraceEvent::GccRateChanged {
                path: PathId(0),
                rate_bps: 50_000,
            },
        ));
        assert_eq!(sink.violations().len(), 2);
    }

    #[test]
    fn cc_rate_clamp_enforced_for_all_algorithms() {
        use crate::CcAlgorithm;
        let sink = InvariantSink::new();
        sink.record(rec(
            1,
            TraceEvent::CcRateChanged {
                path: PathId(0),
                algorithm: CcAlgorithm::Nada,
                rate_bps: 49_999,
            },
        ));
        sink.record(rec(
            2,
            TraceEvent::CcRateChanged {
                path: PathId(1),
                algorithm: CcAlgorithm::MpBbr,
                rate_bps: 30_000_001,
            },
        ));
        sink.record(rec(
            3,
            TraceEvent::CcRateChanged {
                path: PathId(0),
                algorithm: CcAlgorithm::Nada,
                rate_bps: 150_000,
            },
        ));
        let v = sink.violations();
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "cc-rate-clamp"));
        assert!(v[0].detail.contains("nada"), "{}", v[0].detail);
    }

    #[test]
    fn tee_forwards_to_inner_sink() {
        let ring = Arc::new(RingSink::new(16));
        let handle = TraceHandle::new(ring.clone());
        let sink = InvariantSink::wrapping(&handle);
        sink.record(rec(7, TraceEvent::FastPathSwitched { path: PathId(0) }));
        assert_eq!(ring.drain().len(), 1);
        assert!(sink.is_clean());
    }

    #[test]
    fn wrapping_disabled_handle_still_checks() {
        let sink = InvariantSink::wrapping(&TraceHandle::disabled());
        sink.record(rec(10, TraceEvent::FastPathSwitched { path: PathId(0) }));
        sink.record(rec(5, TraceEvent::FastPathSwitched { path: PathId(0) }));
        assert_eq!(sink.violations().len(), 1);
    }

    #[test]
    fn offline_replay_matches_online() {
        let records = vec![
            rec(
                1,
                TraceEvent::PathDisabled {
                    path: PathId(1),
                    fcd_us: 5_000,
                },
            ),
            rec(
                2,
                TraceEvent::SplitDecision {
                    path: PathId(1),
                    packets: 2,
                    offset: 0,
                },
            ),
        ];
        let offline = check_records(&records, InvariantConfig::default());
        let sink = InvariantSink::new();
        for r in &records {
            sink.record(*r);
        }
        assert_eq!(offline, sink.violations());
        assert_eq!(offline.len(), 1);
        // Violations render readably for CI logs.
        assert!(offline[0].to_string().contains("no-traffic-on-disabled-path"));
    }
}
