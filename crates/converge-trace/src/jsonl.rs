//! Schema-versioned JSONL encoding of trace timelines.
//!
//! A timeline document is one header line followed by one line per
//! record, oldest first. Every value is an integer or a canonical
//! lowercase string, so the encoding is deterministic: the same record
//! sequence always yields the same bytes. The current schema is
//! [`SCHEMA`]; consumers should check the header's `schema` field.

use crate::{TraceEvent, TraceRecord};

/// Schema identifier written into every timeline header.
pub const SCHEMA: &str = "converge-trace/v1";

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The timeline header line: schema version plus the job fingerprint the
/// timeline belongs to.
pub fn header_line(job: &str) -> String {
    format!("{{\"schema\":\"{}\",\"job\":\"{}\"}}", SCHEMA, escape(job))
}

/// One record as a single JSON line. Field order is fixed: `at_us`,
/// `event`, then the event's payload fields in declaration order.
pub fn record_line(record: &TraceRecord) -> String {
    let at = record.at.as_micros();
    let name = record.event.name();
    let payload = match record.event {
        TraceEvent::SplitDecision {
            path,
            packets,
            offset,
        } => format!("\"path\":{},\"packets\":{},\"offset\":{}", path.0, packets, offset),
        TraceEvent::FastPathSwitched { path } => format!("\"path\":{}", path.0),
        TraceEvent::AlphaAdjusted {
            path,
            alpha,
            offset,
        } => format!("\"path\":{},\"alpha\":{},\"offset\":{}", path.0, alpha, offset),
        TraceEvent::PathDisabled { path, fcd_us } => {
            format!("\"path\":{},\"fcd_us\":{}", path.0, fcd_us)
        }
        TraceEvent::PathReenabled {
            path,
            margin_us,
            threshold_us,
        } => format!(
            "\"path\":{},\"margin_us\":{},\"threshold_us\":{}",
            path.0, margin_us, threshold_us
        ),
        TraceEvent::FecUpdated {
            path,
            beta_milli,
            media,
            repair,
        } => format!(
            "\"path\":{},\"beta_milli\":{},\"media\":{},\"repair\":{}",
            path.0, beta_milli, media, repair
        ),
        TraceEvent::GccStateChanged { path, usage } => {
            format!("\"path\":{},\"usage\":\"{}\"", path.0, usage.label())
        }
        TraceEvent::GccRateChanged { path, rate_bps } => {
            format!("\"path\":{},\"rate_bps\":{}", path.0, rate_bps)
        }
        TraceEvent::CcStateChanged {
            path,
            algorithm,
            phase,
        } => format!(
            "\"path\":{},\"algorithm\":\"{}\",\"phase\":\"{}\"",
            path.0,
            algorithm.label(),
            phase.label()
        ),
        TraceEvent::CcRateChanged {
            path,
            algorithm,
            rate_bps,
        } => format!(
            "\"path\":{},\"algorithm\":\"{}\",\"rate_bps\":{}",
            path.0,
            algorithm.label(),
            rate_bps
        ),
        TraceEvent::MonitorEdge { path, state } => {
            format!("\"path\":{},\"state\":\"{}\"", path.0, state.label())
        }
        TraceEvent::FeedbackEmitted {
            path,
            alpha,
            fcd_us,
        } => format!("\"path\":{},\"alpha\":{},\"fcd_us\":{}", path.0, alpha, fcd_us),
        TraceEvent::NackSent { path, packets } => {
            format!("\"path\":{},\"packets\":{}", path.0, packets)
        }
        TraceEvent::Retransmitted { path } => format!("\"path\":{}", path.0),
        TraceEvent::FrameDecoded { stream, e2e_us } => {
            format!("\"stream\":{stream},\"e2e_us\":{e2e_us}")
        }
        TraceEvent::FrameDropped { stream } => format!("\"stream\":{stream}"),
        TraceEvent::FrameFrozen { gap_us } => format!("\"gap_us\":{gap_us}"),
        TraceEvent::SbdGroupsChanged {
            flows,
            groups,
            coupled,
        } => format!("\"flows\":{flows},\"groups\":{groups},\"coupled\":{coupled}"),
    };
    format!("{{\"at_us\":{at},\"event\":\"{name}\",{payload}}}")
}

/// A whole timeline document: header plus one line per record, newline
/// terminated.
pub fn render(job: &str, records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 80);
    out.push_str(&header_line(job));
    out.push('\n');
    for record in records {
        out.push_str(&record_line(record));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use converge_net::{PathId, SimTime};

    #[test]
    fn header_carries_schema_and_job() {
        let line = header_line("walking|Converge|seed42");
        assert_eq!(
            line,
            "{\"schema\":\"converge-trace/v1\",\"job\":\"walking|Converge|seed42\"}"
        );
    }

    #[test]
    fn record_lines_are_canonical() {
        let rec = TraceRecord {
            at: SimTime::from_millis(1500),
            event: TraceEvent::PathReenabled {
                path: PathId(1),
                margin_us: 2500,
                threshold_us: 5000,
            },
        };
        assert_eq!(
            record_line(&rec),
            "{\"at_us\":1500000,\"event\":\"path_reenabled\",\"path\":1,\"margin_us\":2500,\"threshold_us\":5000}"
        );
    }

    #[test]
    fn render_is_newline_terminated_and_ordered() {
        let records = vec![
            TraceRecord {
                at: SimTime::from_micros(1),
                event: TraceEvent::FastPathSwitched { path: PathId(0) },
            },
            TraceRecord {
                at: SimTime::from_micros(2),
                event: TraceEvent::FrameFrozen { gap_us: 300_000 },
            },
        ];
        let doc = render("job", &records);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(doc.ends_with('\n'));
        assert!(lines[1].contains("\"at_us\":1"));
        assert!(lines[2].contains("frame_frozen"));
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn every_event_encodes() {
        let events = [
            TraceEvent::SplitDecision {
                path: PathId(0),
                packets: 4,
                offset: -2,
            },
            TraceEvent::FastPathSwitched { path: PathId(1) },
            TraceEvent::AlphaAdjusted {
                path: PathId(1),
                alpha: -5,
                offset: -12,
            },
            TraceEvent::PathDisabled {
                path: PathId(1),
                fcd_us: 10_000,
            },
            TraceEvent::PathReenabled {
                path: PathId(1),
                margin_us: 100,
                threshold_us: 5_000,
            },
            TraceEvent::FecUpdated {
                path: PathId(0),
                beta_milli: 1_250,
                media: 20,
                repair: 3,
            },
            TraceEvent::GccStateChanged {
                path: PathId(0),
                usage: crate::GccUsage::Overuse,
            },
            TraceEvent::GccRateChanged {
                path: PathId(0),
                rate_bps: 2_000_000,
            },
            TraceEvent::CcStateChanged {
                path: PathId(0),
                algorithm: crate::CcAlgorithm::Nada,
                phase: crate::CcPhase::RampUp,
            },
            TraceEvent::CcRateChanged {
                path: PathId(1),
                algorithm: crate::CcAlgorithm::MpBbr,
                rate_bps: 3_000_000,
            },
            TraceEvent::MonitorEdge {
                path: PathId(1),
                state: crate::LinkState::Down,
            },
            TraceEvent::FeedbackEmitted {
                path: PathId(1),
                alpha: 4,
                fcd_us: 12_000,
            },
            TraceEvent::NackSent {
                path: PathId(0),
                packets: 3,
            },
            TraceEvent::Retransmitted { path: PathId(0) },
            TraceEvent::FrameDecoded {
                stream: 0,
                e2e_us: 80_000,
            },
            TraceEvent::FrameDropped { stream: 2 },
            TraceEvent::FrameFrozen { gap_us: 400_000 },
        ];
        for event in events {
            let line = record_line(&TraceRecord {
                at: SimTime::ZERO,
                event,
            });
            assert!(line.starts_with("{\"at_us\":0,\"event\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert!(line.contains(event.name()), "{line}");
        }
    }
}
