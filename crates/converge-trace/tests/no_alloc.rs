//! The zero-overhead-when-disabled guarantee, enforced: emitting through
//! a disabled [`TraceHandle`] must not touch the allocator. Every event
//! payload is a few `Copy` integers and the handle is an `Option<Arc<..>>`
//! that is `None` when disabled, so the whole emit path is a branch.
//!
//! This file holds exactly one test so no concurrent test case can
//! allocate while the counter window is open.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use converge_net::{PathId, SimTime};
use converge_trace::{GccUsage, LinkState, TraceEvent, TraceHandle};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn every_event(i: u64) -> [TraceEvent; 15] {
    let path = PathId((i % 2) as u8);
    [
        TraceEvent::SplitDecision {
            path,
            packets: i as u32,
            offset: -(i as i64),
        },
        TraceEvent::FastPathSwitched { path },
        TraceEvent::AlphaAdjusted {
            path,
            alpha: i as i64,
            offset: 3,
        },
        TraceEvent::PathDisabled { path, fcd_us: i },
        TraceEvent::PathReenabled {
            path,
            margin_us: i,
            threshold_us: 5_000,
        },
        TraceEvent::FecUpdated {
            path,
            beta_milli: 1_000 + i as u32,
            media: 20,
            repair: 2,
        },
        TraceEvent::GccStateChanged {
            path,
            usage: GccUsage::Overuse,
        },
        TraceEvent::GccRateChanged {
            path,
            rate_bps: i * 1_000,
        },
        TraceEvent::MonitorEdge {
            path,
            state: LinkState::Suspect,
        },
        TraceEvent::FeedbackEmitted {
            path,
            alpha: 1,
            fcd_us: i,
        },
        TraceEvent::NackSent {
            path,
            packets: i as u32,
        },
        TraceEvent::Retransmitted { path },
        TraceEvent::FrameDecoded {
            stream: 0,
            e2e_us: i,
        },
        TraceEvent::FrameDropped { stream: 1 },
        TraceEvent::FrameFrozen { gap_us: i },
    ]
}

#[test]
fn disabled_handle_emits_without_allocating() {
    let trace = TraceHandle::disabled();
    assert!(!trace.is_enabled());

    // Warm up (first iteration may lazily initialize something unrelated).
    for event in every_event(0) {
        trace.emit(SimTime::ZERO, event);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let cloned = trace.clone();
        for event in every_event(i) {
            cloned.emit(SimTime::from_micros(i), event);
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled trace path allocated {} time(s)",
        after - before
    );
}
