#!/usr/bin/env bash
# Perf ratchet: compares a fresh bench run against the committed perf
# trajectory and fails on a real regression.
#
# Usage: perf_ratchet.sh <trajectory.json> <current.json> [margin]
#
# The trajectory file (results/BENCH_fig11.json, results/BENCH_fleet.json)
# holds every committed sim-s/wall-s measurement for its ratchet cell; the
# gate passes when the fresh run is at least (1 - margin) of the BEST
# committed run. The current file only needs a top-level
# "sim_s_per_wall_s" (first occurrence wins), so both the sweep report
# (converge-bench/sweep/v1) and the fleet report (converge-bench/fleet/v1)
# gate through the same script. The margin
# (default 0.25) absorbs machine noise — single-digit-percent run-to-run
# variance is normal on shared VMs — while still catching any change that
# costs a quarter of the simulator's throughput. Appending a new (higher)
# run to the trajectory is a deliberate, reviewed act: the floor only ever
# rises.
set -euo pipefail

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <trajectory.json> <current.json> [margin]" >&2
    exit 2
fi
trajectory=$1
current=$2
margin=${3:-0.25}

awk -v margin="$margin" -v cell="$trajectory" '
    FNR == 1 { file++ }
    /"sim_s_per_wall_s"/ {
        v = $0
        sub(/.*"sim_s_per_wall_s": */, "", v)
        sub(/[,}\]].*/, "", v)
        if (file == 1) {
            if (v + 0 > best) best = v + 0
        } else if (!seen) {
            cur = v + 0
            seen = 1
        }
    }
    END {
        if (best <= 0) {
            printf "ratchet[%s]: missing or zero sim_s_per_wall_s in trajectory\n", cell
            exit 1
        }
        if (!seen || cur <= 0) {
            printf "ratchet[%s]: missing or zero sim_s_per_wall_s in current run\n", cell
            exit 1
        }
        floor = best * (1 - margin)
        if (cur < floor) {
            printf "ratchet[%s]: throughput regressed: %.1f sim-s/wall-s < floor %.1f (best committed %.1f, margin %.0f%%)\n",
                cell, cur, floor, best, margin * 100
            exit 1
        }
        printf "ratchet[%s]: ok: %.1f sim-s/wall-s (best committed %.1f, floor %.1f)\n",
            cell, cur, best, floor
    }
' "$trajectory" "$current"
