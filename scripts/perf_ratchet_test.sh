#!/usr/bin/env bash
# Unit tests for scripts/perf_ratchet.sh against fixture JSON pairs.
# Run directly or via ci.sh; exits non-zero on the first failing case.
set -euo pipefail
cd "$(dirname "$0")"

ratchet=./perf_ratchet.sh
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fails=0
expect() { # expect <pass|fail> <name> <trajectory> <current> [margin]
    local want=$1 name=$2 trajectory=$3 current=$4 margin=${5:-}
    local got=pass
    if [ -n "$margin" ]; then
        "$ratchet" "$trajectory" "$current" "$margin" > "$tmp/out" 2>&1 || got=fail
    else
        "$ratchet" "$trajectory" "$current" > "$tmp/out" 2>&1 || got=fail
    fi
    if [ "$got" != "$want" ]; then
        echo "FAIL $name: expected $want, got $got:"
        sed 's/^/    /' "$tmp/out"
        fails=$((fails + 1))
    else
        echo "ok   $name"
    fi
}

# Trajectory fixture: two committed runs, best = 1000.
cat > "$tmp/trajectory.json" <<'EOF'
{
  "schema": "converge-bench/perf-trajectory/v1",
  "metric": "sim_s_per_wall_s",
  "runs": [
    {"label": "old", "sim_s_per_wall_s": 552.89},
    {"label": "best", "sim_s_per_wall_s": 1000.0}
  ]
}
EOF

# Current-run fixtures (bench sweep schema: one value per file).
cat > "$tmp/improved.json"   <<'EOF'
{"schema": "converge-bench/sweep/v1", "sim_s_per_wall_s": 1200.0}
EOF
cat > "$tmp/noisy.json"      <<'EOF'
{"schema": "converge-bench/sweep/v1", "sim_s_per_wall_s": 801.5}
EOF
cat > "$tmp/regressed.json"  <<'EOF'
{"schema": "converge-bench/sweep/v1", "sim_s_per_wall_s": 600.0}
EOF
cat > "$tmp/zero.json"       <<'EOF'
{"schema": "converge-bench/sweep/v1", "sim_s_per_wall_s": 0.0}
EOF
cat > "$tmp/keyless.json"    <<'EOF'
{"schema": "converge-bench/sweep/v1", "wall_s": 0.5}
EOF

# Fleet-report fixtures (converge-bench/fleet/v1): the metric sits
# mid-document after other numeric keys; the gate must pick the first
# "sim_s_per_wall_s" occurrence and ignore everything else.
cat > "$tmp/fleet_trajectory.json" <<'EOF'
{
  "schema": "converge-bench/perf-trajectory/v1",
  "cell": "fleet --sessions 1000 --conference-size 4 --duration-s 20 --shards 1",
  "metric": "sim_s_per_wall_s",
  "runs": [
    {"label": "seed", "sim_s_per_wall_s": 500.0}
  ]
}
EOF
cat > "$tmp/fleet_ok.json" <<'EOF'
{
  "schema": "converge-bench/fleet/v1",
  "sessions": 1000,
  "wall_s": 33.991,
  "sim_s": 20000.0,
  "sim_s_per_wall_s": 588.40,
  "sessions_per_core": 1000.0,
  "qoe_p50": 0.353711
}
EOF
cat > "$tmp/fleet_regressed.json" <<'EOF'
{
  "schema": "converge-bench/fleet/v1",
  "sessions": 1000,
  "wall_s": 80.0,
  "sim_s": 20000.0,
  "sim_s_per_wall_s": 250.0,
  "sessions_per_core": 1000.0,
  "qoe_p50": 0.353711
}
EOF

# Degenerate trajectory fixtures.
cat > "$tmp/trajectory_zero.json" <<'EOF'
{"runs": [{"label": "stub", "sim_s_per_wall_s": 0.0}]}
EOF
cat > "$tmp/trajectory_keyless.json" <<'EOF'
{"runs": [{"label": "stub"}]}
EOF

# An improvement and a within-noise dip both pass (floor = 1000 * 0.75).
expect pass improvement-passes          "$tmp/trajectory.json" "$tmp/improved.json"
expect pass within-noise-passes         "$tmp/trajectory.json" "$tmp/noisy.json"
# A real regression (600 < 750) fails.
expect fail regression-fails            "$tmp/trajectory.json" "$tmp/regressed.json"
# The margin is honoured: 600 passes with a 45% margin (floor 550).
expect pass custom-margin-honoured      "$tmp/trajectory.json" "$tmp/regressed.json" 0.45
# Broken inputs are rejected, never silently passed.
expect fail zero-current-rejected       "$tmp/trajectory.json" "$tmp/zero.json"
expect fail keyless-current-rejected    "$tmp/trajectory.json" "$tmp/keyless.json"
expect fail zero-baseline-rejected      "$tmp/trajectory_zero.json" "$tmp/improved.json"
expect fail missing-baseline-rejected   "$tmp/trajectory_keyless.json" "$tmp/improved.json"
expect fail missing-file-rejected       "$tmp/does-not-exist.json" "$tmp/improved.json"
# Fleet-report current files gate through the same script: the metric is
# mid-document and first-occurrence parsing must still find it.
expect pass fleet-report-passes         "$tmp/fleet_trajectory.json" "$tmp/fleet_ok.json"
expect fail fleet-regression-fails      "$tmp/fleet_trajectory.json" "$tmp/fleet_regressed.json"

if [ "$fails" -ne 0 ]; then
    echo "perf_ratchet_test: $fails case(s) failed"
    exit 1
fi
echo "perf_ratchet_test: all cases passed"
